"""Command-line interface for the PBS reproduction.

Usage (installed as ``pbs-repro``)::

    pbs-repro list                      # list available experiments
    pbs-repro run figure6               # run one experiment and print its table
    pbs-repro run table4 --trials 50000 --seed 7
    pbs-repro run all --trials 20000    # run every experiment
    pbs-repro run table4 --workers 4 --probe-resolution-ms 1
                                        # sharded sweep + adaptive probe grid
    pbs-repro run scenario --name partition --trials 2000
                                        # hostile-conditions divergence report
    pbs-repro run scenarios --trials 2000
                                        # the full scenario matrix
    pbs-repro predict --fit LNKD-DISK --n 3 --r 1 --w 1
                                        # one-off prediction for a configuration
    pbs-repro serve --port 8080         # JSON/HTTP prediction service

``predict`` mirrors the interactive demo the paper links to: given a latency
environment and an (N, R, W) choice, print consistency-at-commit, t-visibility
targets, k-staleness, and operation latency percentiles.  ``serve`` keeps a
:class:`repro.serving.PredictorService` running behind a JSON/HTTP endpoint:
tenants stream latency observations in and query predictions/SLA
recommendations against continuously refit models.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.core.predictor import PBSPredictor
from repro.core.quorum import ReplicaConfig
from repro.exceptions import PBSError
from repro.experiments.registry import list_experiments, run_experiment
from repro.kernels import registered_backends
from repro.latency.production import PRODUCTION_FIT_NAMES, production_fit

__all__ = ["main", "build_parser"]

#: Names accepted by --kernel-backend: every registered backend plus "auto".
_KERNEL_BACKEND_CHOICES: tuple[str, ...] = (*registered_backends(), "auto")


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="pbs-repro",
        description="Probabilistically Bounded Staleness (PBS) reproduction toolkit",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiments")

    run_parser = subparsers.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument("experiment", help="experiment id from 'pbs-repro list', or 'all'")
    run_parser.add_argument(
        "--trials", type=int, default=50_000, help="Monte Carlo trials / workload size"
    )
    run_parser.add_argument("--seed", type=int, default=0, help="random seed")
    run_parser.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help="sweep-engine chunk size (trials accumulated between convergence checks)",
    )
    run_parser.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help=(
            "stop sweeps early once every Wilson half-width is at most this tight; "
            "experiments reporting 99.9%% tail quantiles never stop before ~100k "
            "trials (tail-support floor), so the flag only takes effect above that"
        ),
    )
    run_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "shard seeded Monte Carlo sweeps — and the validation "
            "experiment's simulated write blocks — across this many worker "
            "processes (default: serial); results are identical for any "
            "worker count"
        ),
    )
    run_parser.add_argument(
        "--draw-batch-size",
        type=int,
        default=None,
        help=(
            "cluster-simulator network draw-buffer size (validation "
            "experiment; default 4096): latencies are drawn from numpy in "
            "batches this large instead of one call per message; 1 "
            "reproduces the legacy per-message sampling stream"
        ),
    )
    run_parser.add_argument(
        "--probe-resolution-ms",
        type=float,
        default=None,
        help=(
            "enable adaptive probe-grid refinement: sweep a coarse probe grid "
            "and bisect around each t-visibility crossing until it is bracketed "
            "to this many milliseconds (experiments without a probe grid "
            "ignore the flag)"
        ),
    )
    run_parser.add_argument(
        "--name",
        default=None,
        help=(
            "hostile-conditions scenario name for the 'scenario' experiment "
            "(see repro.scenarios; e.g. baseline, partition, zipfian-skew); "
            "experiments without scenarios ignore the flag"
        ),
    )
    run_parser.add_argument(
        "--kernel-backend",
        default=None,
        choices=_KERNEL_BACKEND_CHOICES,
        help=(
            "Monte Carlo sampling-reduction backend: 'numpy' (bit-for-bit "
            "reference, the default), 'numba' (fused prange-parallel JIT "
            "kernel; falls back to numpy with a warning when numba is not "
            "installed), or 'auto' (fastest available)"
        ),
    )
    run_parser.add_argument(
        "--precision", type=int, default=3, help="decimal places in printed tables"
    )
    run_parser.add_argument(
        "--export",
        metavar="DIR",
        default=None,
        help="also write <experiment>.csv and <experiment>.json files to this directory",
    )

    predict_parser = subparsers.add_parser(
        "predict", help="predict staleness and latency for one configuration"
    )
    predict_parser.add_argument(
        "--fit",
        default="LNKD-DISK",
        choices=list(PRODUCTION_FIT_NAMES),
        help="production latency environment",
    )
    predict_parser.add_argument("--n", type=int, default=3, help="replication factor N")
    predict_parser.add_argument("--r", type=int, default=1, help="read quorum size R")
    predict_parser.add_argument("--w", type=int, default=1, help="write quorum size W")
    predict_parser.add_argument("--trials", type=int, default=100_000)
    predict_parser.add_argument("--seed", type=int, default=0)
    predict_parser.add_argument(
        "--mode",
        default="montecarlo",
        choices=("montecarlo", "analytic", "hybrid"),
        help=(
            "prediction mode: 'montecarlo' samples through the sweep engine, "
            "'analytic' answers by numerical convolution (no sampling; "
            "requires i.i.d. replicas, so not available for --fit WAN), "
            "'hybrid' answers analytically and spot-checks with a small "
            "Monte Carlo sweep"
        ),
    )
    predict_parser.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help="sweep-engine chunk size (trials accumulated between convergence checks)",
    )
    predict_parser.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help=(
            "stop the prediction sweep early at this Wilson half-width; the report's "
            "99.9%% tail quantiles impose a ~100k-trial floor, so this only takes "
            "effect when --trials exceeds it"
        ),
    )
    predict_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "shard the prediction sweep across this many worker processes "
            "(default: serial); results are identical for any worker count"
        ),
    )
    predict_parser.add_argument(
        "--probe-resolution-ms",
        type=float,
        default=None,
        help=(
            "enable adaptive probe-grid refinement: bracket the report's 99%% "
            "and 99.9%% t-visibility crossings toward this many milliseconds "
            "using exact probe counts instead of the histogram sketch (budget "
            "permitting — a shortfall is reported)"
        ),
    )
    predict_parser.add_argument(
        "--kernel-backend",
        default=None,
        choices=_KERNEL_BACKEND_CHOICES,
        help=(
            "Monte Carlo sampling-reduction backend: 'numpy' (reference, "
            "default), 'numba' (fused JIT kernel with graceful fallback), or "
            "'auto' (fastest available)"
        ),
    )

    serve_parser = subparsers.add_parser(
        "serve", help="run the JSON/HTTP prediction service"
    )
    serve_parser.add_argument("--host", default="127.0.0.1", help="bind address")
    serve_parser.add_argument(
        "--port", type=int, default=8080, help="bind port (0 picks a free port)"
    )
    serve_parser.add_argument(
        "--fit",
        default="LNKD-SSD",
        choices=[name for name in PRODUCTION_FIT_NAMES if name != "WAN"],
        help=(
            "latency environment for the pre-registered 'default' tenant "
            "(the service answers analytically, so the per-replica WAN model "
            "is not servable)"
        ),
    )
    serve_parser.add_argument(
        "--refit-every",
        type=int,
        default=None,
        help="auto-refit a tenant after this many ingested observations",
    )
    serve_parser.add_argument(
        "--refit-method",
        default="empirical",
        choices=("empirical", "mixture"),
        help=(
            "how reservoirs become distributions on refit: 'empirical' "
            "(resample the reservoir directly) or 'mixture' (the paper's "
            "Pareto+exponential fit)"
        ),
    )
    serve_parser.add_argument(
        "--no-spot-checks",
        action="store_true",
        help="disable the background Monte Carlo audit thread",
    )
    serve_parser.add_argument(
        "--request-limit",
        type=int,
        default=None,
        help="exit after this many responses (scripted runs and tests)",
    )
    serve_parser.add_argument(
        "--verbose", action="store_true", help="log each request to stderr"
    )
    return parser


def _command_list() -> int:
    for experiment_id, description in list_experiments():
        print(f"{experiment_id:24s} {description}")
    return 0


def _command_run(
    experiment: str,
    trials: int,
    seed: int,
    precision: int,
    export_dir: str | None,
    chunk_size: int | None = None,
    tolerance: float | None = None,
    workers: int | None = None,
    probe_resolution_ms: float | None = None,
    kernel_backend: str | None = None,
    draw_batch_size: int | None = None,
    name: str | None = None,
) -> int:
    if experiment == "all":
        experiment_ids = [experiment_id for experiment_id, _ in list_experiments()]
    else:
        experiment_ids = [experiment]
    sweep_kwargs: dict[str, object] = {}
    if chunk_size is not None:
        sweep_kwargs["chunk_size"] = chunk_size
    if tolerance is not None:
        sweep_kwargs["tolerance"] = tolerance
    if workers is not None:
        sweep_kwargs["workers"] = workers
    if probe_resolution_ms is not None:
        sweep_kwargs["probe_resolution_ms"] = probe_resolution_ms
    if kernel_backend is not None:
        sweep_kwargs["kernel_backend"] = kernel_backend
    if draw_batch_size is not None:
        sweep_kwargs["draw_batch_size"] = draw_batch_size
    if name is not None:
        sweep_kwargs["name"] = name
    for experiment_id in experiment_ids:
        result = run_experiment(experiment_id, trials=trials, rng=seed, **sweep_kwargs)
        print(result.to_text(precision=precision))
        if export_dir is not None:
            from repro.analysis.export import export_result

            for path in export_result(result, export_dir):
                print(f"exported: {path}")
        print()
    return 0


def _command_predict(
    fit: str,
    n: int,
    r: int,
    w: int,
    trials: int,
    seed: int,
    chunk_size: int | None = None,
    tolerance: float | None = None,
    workers: int | None = None,
    probe_resolution_ms: float | None = None,
    kernel_backend: str | None = None,
    mode: str = "montecarlo",
) -> int:
    config = ReplicaConfig(n=n, r=r, w=w)
    kwargs = {"replica_count": n} if fit.upper() == "WAN" else {}
    predictor = PBSPredictor(production_fit(fit, **kwargs), config)
    report = predictor.report(
        trials=trials,
        rng=seed,
        chunk_size=chunk_size,
        tolerance=tolerance,
        workers=workers if workers is not None else 1,
        probe_resolution_ms=probe_resolution_ms,
        kernel_backend=kernel_backend,
        mode=mode,
    )
    print(f"latency environment: {fit}")
    if mode == "montecarlo" and report.trials < trials:
        print(f"converged early after {report.trials} of {trials} trials")
    for line in report.summary_lines():
        print(line)
    if probe_resolution_ms is not None and report.t_visibility_brackets:
        # The resolution is a goal, not a guarantee: a fixed trial budget can
        # end the run mid-refinement.  Say what was actually achieved.
        for target, bracket in sorted(report.t_visibility_brackets.items()):
            label = f"{target * 100:g}%"
            if bracket is None:
                print(
                    f"note: the {label} crossing lies beyond the probe grid; "
                    "its t-visibility is a histogram estimate"
                )
                continue
            width = bracket[1] - bracket[0]
            if width > probe_resolution_ms:
                print(
                    f"note: the {label} crossing was bracketed to {width:.3g} ms, "
                    f"short of the requested {probe_resolution_ms:g} ms "
                    "(raise --trials, or lower --chunk-size so more "
                    "refinement rounds fit in the budget)"
                )
    return 0


def _command_serve(
    host: str,
    port: int,
    fit: str,
    refit_every: int | None,
    refit_method: str,
    spot_checks: bool,
    request_limit: int | None,
    verbose: bool,
) -> int:
    # Imported lazily so the CLI stays importable without the serving stack.
    from repro.serving import PredictorService, make_server, serve_forever

    service = PredictorService(refit_every=refit_every, refit_method=refit_method)
    service.register_tenant("default", fit)
    if spot_checks:
        service.start_spot_check_worker()
    server = make_server(service, host=host, port=port, verbose=verbose)
    bound_host, bound_port = server.server_address[:2]
    print(f"pbs-repro serving on http://{bound_host}:{bound_port}", flush=True)
    print(f"default tenant registered with the {fit} fit", flush=True)
    try:
        handled = serve_forever(server, request_limit=request_limit)
    finally:
        service.stop_spot_check_worker()
    print(f"served {handled} responses", flush=True)
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "list":
            return _command_list()
        if args.command == "run":
            return _command_run(
                args.experiment,
                args.trials,
                args.seed,
                args.precision,
                args.export,
                args.chunk_size,
                args.tolerance,
                args.workers,
                args.probe_resolution_ms,
                args.kernel_backend,
                args.draw_batch_size,
                args.name,
            )
        if args.command == "predict":
            return _command_predict(
                args.fit,
                args.n,
                args.r,
                args.w,
                args.trials,
                args.seed,
                args.chunk_size,
                args.tolerance,
                args.workers,
                args.probe_resolution_ms,
                args.kernel_backend,
                args.mode,
            )
        if args.command == "serve":
            return _command_serve(
                args.host,
                args.port,
                args.fit,
                args.refit_every,
                args.refit_method,
                not args.no_spot_checks,
                args.request_limit,
                args.verbose,
            )
        parser.error(f"unknown command {args.command!r}")  # pragma: no cover
        return 2  # pragma: no cover
    except PBSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
