"""Per-replica composite latency models.

Most of the paper treats the four WARS distributions as IID across replicas.
The WAN scenario (§5.5) breaks that symmetry: exactly one replica is local
(small delay) while the remaining replicas sit in remote datacenters and every
message to or from them pays an extra 75 ms.  :class:`PerReplicaLatency`
captures that pattern — a different distribution per replica slot — while
still exposing enough structure for the Monte Carlo kernel to sample
efficiently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.exceptions import DistributionError
from repro.latency.base import LatencyDistribution
from repro.latency.distributions import ShiftedLatency

__all__ = ["PerReplicaLatency", "ReplicaLatencyModel", "uniform_replica_model", "wan_replica_model"]


@dataclass(frozen=True, repr=False)
class PerReplicaLatency(LatencyDistribution):
    """A latency model that assigns a distinct distribution to each replica slot.

    When used as a plain :class:`LatencyDistribution` (``sample``), it draws
    from the replica slots uniformly at random, which matches the paper's
    assumption that the client's coordinator (and therefore which replica is
    "local") is chosen uniformly per operation.  The richer
    :meth:`sample_matrix` form draws one latency per replica and is what the
    WARS Monte Carlo kernel uses.
    """

    replicas: tuple[LatencyDistribution, ...]
    name: str = "per-replica"

    def __post_init__(self) -> None:
        if not self.replicas:
            raise DistributionError("per-replica latency requires at least one replica")

    @property
    def replica_count(self) -> int:
        return len(self.replicas)

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        choices = rng.integers(0, self.replica_count, size=size)
        samples = np.empty(size, dtype=float)
        for index, distribution in enumerate(self.replicas):
            mask = choices == index
            count = int(np.sum(mask))
            if count:
                samples[mask] = distribution.sample(count, rng)
        return self.validate_samples(samples)

    def sample_matrix(self, trials: int, rng: np.random.Generator) -> np.ndarray:
        """Draw a ``(trials, replica_count)`` latency matrix, one column per replica."""
        columns = [
            distribution.sample(trials, rng) for distribution in self.replicas
        ]
        return np.column_stack(columns)

    def mean(self) -> float:
        return float(np.mean([distribution.mean() for distribution in self.replicas]))


@dataclass(frozen=True)
class ReplicaLatencyModel:
    """The four WARS distributions, each possibly replica-dependent.

    This is a convenience bundle used by the WAN scenario and by failure
    ablations where a subset of replicas is slow.  ``n`` is the replica count
    implied by the per-replica models (or ``None`` when all four components
    are IID and any N is acceptable).
    """

    write: LatencyDistribution
    ack: LatencyDistribution
    read: LatencyDistribution
    response: LatencyDistribution

    def implied_replica_count(self) -> int | None:
        """Return the replica count if any component is per-replica, else ``None``."""
        counts = {
            component.replica_count
            for component in (self.write, self.ack, self.read, self.response)
            if isinstance(component, PerReplicaLatency)
        }
        if not counts:
            return None
        if len(counts) > 1:
            raise DistributionError(
                f"inconsistent per-replica counts across WARS components: {sorted(counts)}"
            )
        return counts.pop()


def uniform_replica_model(
    distribution: LatencyDistribution, replica_count: int, name: str = "uniform-replicas"
) -> PerReplicaLatency:
    """Replicate one distribution across ``replica_count`` identical replica slots."""
    if replica_count <= 0:
        raise DistributionError(f"replica count must be positive, got {replica_count}")
    return PerReplicaLatency(replicas=tuple([distribution] * replica_count), name=name)


def wan_replica_model(
    local: LatencyDistribution,
    replica_count: int,
    wan_delay_ms: float = 75.0,
    local_replicas: int = 1,
    name: str = "wan",
) -> PerReplicaLatency:
    """Build the paper's WAN scenario: some local replicas, the rest remote.

    Each remote replica's one-way latency is the local distribution shifted by
    ``wan_delay_ms`` (the paper uses 75 ms one-way, i.e. 150 ms round trip).
    """
    if replica_count <= 0:
        raise DistributionError(f"replica count must be positive, got {replica_count}")
    if not 0 <= local_replicas <= replica_count:
        raise DistributionError(
            f"local replica count must be between 0 and {replica_count}, got {local_replicas}"
        )
    remote = ShiftedLatency(base=local, offset=wan_delay_ms, name=f"{local.name}+wan")
    replicas: list[LatencyDistribution] = [local] * local_replicas
    replicas.extend([remote] * (replica_count - local_replicas))
    return PerReplicaLatency(replicas=tuple(replicas), name=name)
