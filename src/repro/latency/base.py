"""Latency distribution interface.

The WARS model (paper §4.1) is parameterised by four one-way message latency
distributions: ``W`` (coordinator→replica write), ``A`` (replica→coordinator
acknowledgement), ``R`` (coordinator→replica read request), and ``S``
(replica→coordinator read response).  Everything in :mod:`repro.core.wars`
and :mod:`repro.montecarlo` consumes objects implementing the
:class:`LatencyDistribution` interface defined here, so synthetic
distributions, production fits, empirical traces, and composites are all
interchangeable.

All latencies are in **milliseconds**, matching the paper's reporting units.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.exceptions import DistributionError

__all__ = [
    "LatencyDistribution",
    "DistributionSummary",
    "as_rng",
    "DEFAULT_PERCENTILES",
]

#: Percentiles reported by :meth:`LatencyDistribution.describe`, chosen to
#: mirror the production summary tables in the paper (Tables 1 and 2).
DEFAULT_PERCENTILES: tuple[float, ...] = (50.0, 75.0, 95.0, 98.0, 99.0, 99.9)

#: Size and seed of the one-off Monte Carlo draw backing the sampling-based
#: ``variance``/``cdf``/``ppf`` fallbacks.  The draw is made at most once per
#: distribution instance and cached (instances are immutable), so repeated
#: queries — e.g. tabulating a CDF for the analytic fast path — pay for the
#: 200k samples exactly once instead of on every call.
_FALLBACK_SAMPLE_COUNT: int = 200_000
_FALLBACK_SAMPLE_SEED: int = 0


def as_rng(seed_or_rng: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from a seed, generator, or ``None``.

    Passing an existing generator returns it unchanged so callers can share a
    single stream across several distributions; passing an integer (or
    ``None``) constructs a fresh PCG64 generator.
    """
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    return np.random.default_rng(seed_or_rng)


@dataclass(frozen=True)
class DistributionSummary:
    """Summary statistics for a latency distribution in milliseconds.

    Mirrors the shape of the production latency tables in the paper: a mean
    plus a small set of percentiles.
    """

    mean: float
    percentiles: Mapping[float, float]

    def percentile(self, q: float) -> float:
        """Return the latency at percentile ``q`` (e.g. ``99.9``)."""
        try:
            return self.percentiles[q]
        except KeyError as exc:
            raise DistributionError(f"percentile {q} not present in summary") from exc

    def as_rows(self) -> list[tuple[str, float]]:
        """Return ``(label, value)`` rows suitable for table rendering."""
        rows: list[tuple[str, float]] = [("mean", self.mean)]
        rows.extend((f"p{q:g}", value) for q, value in sorted(self.percentiles.items()))
        return rows


class LatencyDistribution(abc.ABC):
    """A one-way message latency distribution, in milliseconds.

    Concrete subclasses must implement :meth:`sample` and :meth:`mean`; the
    remaining methods have sensible sampling-based defaults that subclasses
    with analytic forms are encouraged to override.
    """

    #: Short human-readable name used by ``repr`` and table rendering.
    name: str = "latency"

    @abc.abstractmethod
    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``size`` IID latency samples (a 1-D float array, ms)."""

    @abc.abstractmethod
    def mean(self) -> float:
        """Return the distribution mean in milliseconds."""

    # ------------------------------------------------------------------
    # Optional analytic hooks with sampling-based fallbacks.
    # ------------------------------------------------------------------
    def _fallback_samples(self) -> np.ndarray:
        """Return the cached, sorted fallback draw, sampling it on first use.

        ``variance``/``cdf``/``ppf`` fall back to a fixed-seed 200,000-sample
        estimate when a subclass has no closed form.  Distributions are
        immutable, so the draw is a pure function of the instance and is
        cached on first use (``object.__setattr__`` is the sanctioned escape
        hatch for frozen dataclasses); every subsequent fallback query reuses
        it instead of redrawing.
        """
        try:
            return self._fallback_sample_cache  # type: ignore[attr-defined]
        except AttributeError:
            samples = np.sort(
                self.sample(_FALLBACK_SAMPLE_COUNT, as_rng(_FALLBACK_SAMPLE_SEED))
            )
            object.__setattr__(self, "_fallback_sample_cache", samples)
            return samples

    def variance(self) -> float:
        """Return the distribution variance (ms²), estimated by sampling if needed."""
        return float(np.var(self._fallback_samples()))

    def cdf(self, x: float) -> float:
        """Return ``P(latency <= x)``, estimated by sampling if not overridden."""
        samples = self._fallback_samples()
        return float(np.searchsorted(samples, x, side="right") / samples.size)

    def ppf(self, q: float) -> float:
        """Return the ``q``-quantile (``q`` in [0, 1]), estimated by sampling if needed."""
        if not 0.0 <= q <= 1.0:
            raise DistributionError(f"quantile must be in [0, 1], got {q}")
        return float(np.quantile(self._fallback_samples(), q))

    def ppf_batch(self, qs: Sequence[float] | np.ndarray) -> np.ndarray:
        """Vectorised :meth:`ppf`: the quantile for every ``q`` in ``qs``.

        Subclasses that override :meth:`ppf` are evaluated point-wise through
        their closed form; distributions still on the sampling fallback answer
        the whole ladder with a single ``np.quantile`` call over the cached
        draw.  This is the entry point the analytic fast path
        (:mod:`repro.analytic`) uses to tabulate leg distributions.
        """
        values = np.asarray(qs, dtype=float)
        if values.size == 0:
            return values.copy()
        if np.any(values < 0.0) or np.any(values > 1.0):
            raise DistributionError("quantiles must lie in [0, 1]")
        if type(self).ppf is not LatencyDistribution.ppf:
            flat = np.array([self.ppf(float(q)) for q in values.ravel()])
            return flat.reshape(values.shape)
        return np.quantile(self._fallback_samples(), values)

    # ------------------------------------------------------------------
    # Convenience helpers shared by all distributions.
    # ------------------------------------------------------------------
    def percentile(self, q: float) -> float:
        """Return the latency at percentile ``q`` (``q`` in [0, 100])."""
        return self.ppf(q / 100.0)

    def describe(
        self,
        percentiles: Sequence[float] = DEFAULT_PERCENTILES,
        samples: int = 200_000,
        rng: np.random.Generator | int | None = 0,
    ) -> DistributionSummary:
        """Summarise the distribution with a mean and the requested percentiles.

        The summary is computed from a single Monte Carlo draw so that it is
        consistent across the mean and every percentile even for distributions
        without analytic quantile functions.
        """
        draws = self.sample(samples, as_rng(rng))
        values = np.percentile(draws, list(percentiles))
        return DistributionSummary(
            mean=float(np.mean(draws)),
            percentiles={float(q): float(v) for q, v in zip(percentiles, values)},
        )

    def validate_samples(self, samples: np.ndarray) -> np.ndarray:
        """Raise :class:`DistributionError` if any sample is negative or non-finite."""
        if samples.ndim != 1:
            raise DistributionError("latency samples must form a 1-D array")
        if not np.all(np.isfinite(samples)):
            raise DistributionError(f"{self.name} produced non-finite latency samples")
        if np.any(samples < 0):
            raise DistributionError(f"{self.name} produced negative latency samples")
        return samples

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        mean = self.mean()
        mean_text = f"{mean:.3f}" if math.isfinite(mean) else "inf"
        return f"<{type(self).__name__} {self.name} mean={mean_text}ms>"
