"""Production latency distributions from the paper (Tables 1–3).

The paper's evaluation is driven by four latency scenarios:

* ``LNKD-SSD`` — LinkedIn Voldemort on commodity SSDs.  Network/CPU bound, so
  the paper assumes all four one-way WARS distributions are identical.
* ``LNKD-DISK`` — LinkedIn Voldemort on 15k RPM spinning disks.  Reads,
  acknowledgements and responses reuse the SSD fit, but the write path (which
  must touch the disk) is fit separately and has a much heavier tail.
* ``YMMR`` — Yammer's Riak deployment.  Write and non-write paths are fit
  separately; writes have a very long tail (fsync-bound).
* ``WAN`` — a synthetic multi-datacenter scenario: one local replica, the
  remaining replicas behind a 75 ms one-way WAN delay, with LNKD-DISK local
  service times.

Table 3 of the paper gives each fit as a two-component mixture (Pareto body +
exponential tail); those parameters are reproduced verbatim here.  Tables 1
and 2 give the raw production summary statistics that the fits were derived
from; they are included so the fitting procedure (``repro.latency.fitting``)
can be validated against the published numbers.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Callable, Mapping

from repro.exceptions import ConfigurationError
from repro.latency.base import DistributionSummary, LatencyDistribution
from repro.latency.composite import wan_replica_model
from repro.latency.mixture import MixtureDistribution, pareto_exponential_mixture

__all__ = [
    "WARSDistributions",
    "lnkd_ssd",
    "lnkd_disk",
    "ymmr",
    "wan",
    "production_fit",
    "PRODUCTION_FIT_NAMES",
    "LINKEDIN_DISK_SUMMARY",
    "LINKEDIN_SSD_SUMMARY",
    "YAMMER_READ_SUMMARY",
    "YAMMER_WRITE_SUMMARY",
]


@dataclass(frozen=True)
class WARSDistributions:
    """The four one-way latency distributions of the WARS model.

    ``w`` is the coordinator→replica write delay, ``a`` the replica→coordinator
    acknowledgement delay, ``r`` the coordinator→replica read-request delay,
    and ``s`` the replica→coordinator read-response delay.
    """

    w: LatencyDistribution
    a: LatencyDistribution
    r: LatencyDistribution
    s: LatencyDistribution
    name: str = "wars"

    @classmethod
    def symmetric(cls, distribution: LatencyDistribution, name: str = "wars") -> "WARSDistributions":
        """All four one-way delays share one distribution (the paper's W=A=R=S case)."""
        return cls(w=distribution, a=distribution, r=distribution, s=distribution, name=name)

    @classmethod
    def write_specialised(
        cls,
        write: LatencyDistribution,
        other: LatencyDistribution,
        name: str = "wars",
    ) -> "WARSDistributions":
        """Separate write-path distribution, shared A=R=S (LNKD-DISK, YMMR pattern)."""
        return cls(w=write, a=other, r=other, s=other, name=name)

    def components(self) -> Mapping[str, LatencyDistribution]:
        """Return the four distributions keyed by their WARS letter."""
        return {"W": self.w, "A": self.a, "R": self.r, "S": self.s}


# ---------------------------------------------------------------------------
# Table 1: LinkedIn Voldemort single-node production latencies (ms).
# ---------------------------------------------------------------------------
LINKEDIN_DISK_SUMMARY = DistributionSummary(
    mean=4.85, percentiles={95.0: 15.0, 99.0: 25.0}
)
LINKEDIN_SSD_SUMMARY = DistributionSummary(
    mean=0.58, percentiles={95.0: 1.0, 99.0: 2.0}
)

# ---------------------------------------------------------------------------
# Table 2: Yammer Riak production latencies (ms), N=3, R=2, W=2.
# ---------------------------------------------------------------------------
YAMMER_READ_SUMMARY = DistributionSummary(
    mean=9.23,
    percentiles={
        0.0: 1.55,
        50.0: 3.75,
        75.0: 4.17,
        95.0: 5.2,
        98.0: 6.045,
        99.0: 6.59,
        99.9: 32.89,
        100.0: 2979.85,
    },
)
YAMMER_WRITE_SUMMARY = DistributionSummary(
    mean=8.62,
    percentiles={
        0.0: 1.68,
        50.0: 5.73,
        75.0: 6.50,
        95.0: 8.48,
        98.0: 10.36,
        99.0: 131.73,
        99.9: 435.83,
        100.0: 4465.28,
    },
)


# ---------------------------------------------------------------------------
# Table 3: mixture fits for the one-way WARS distributions.
# ---------------------------------------------------------------------------
def _lnkd_ssd_oneway() -> MixtureDistribution:
    """LNKD-SSD one-way delay: 91.22% Pareto(xm=.235, α=10) + 8.78% Exp(λ=1.66)."""
    return pareto_exponential_mixture(
        pareto_weight=0.9122, xm=0.235, alpha=10.0, exponential_rate=1.66, name="LNKD-SSD"
    )


def _lnkd_disk_write_oneway() -> MixtureDistribution:
    """LNKD-DISK one-way write delay: 38% Pareto(xm=1.05, α=1.51) + 62% Exp(λ=.183)."""
    return pareto_exponential_mixture(
        pareto_weight=0.38, xm=1.05, alpha=1.51, exponential_rate=0.183, name="LNKD-DISK-W"
    )


def _ymmr_write_oneway() -> MixtureDistribution:
    """YMMR one-way write delay: 93.9% Pareto(xm=3, α=3.35) + 6.1% Exp(λ=.0028)."""
    return pareto_exponential_mixture(
        pareto_weight=0.939, xm=3.0, alpha=3.35, exponential_rate=0.0028, name="YMMR-W"
    )


def _ymmr_other_oneway() -> MixtureDistribution:
    """YMMR one-way A=R=S delay: 98.2% Pareto(xm=1.5, α=3.8) + 1.8% Exp(λ=.0217)."""
    return pareto_exponential_mixture(
        pareto_weight=0.982, xm=1.5, alpha=3.8, exponential_rate=0.0217, name="YMMR-ARS"
    )


def lnkd_ssd() -> WARSDistributions:
    """LinkedIn Voldemort on SSDs: symmetric W=A=R=S (Table 3, LNKD-SSD)."""
    return WARSDistributions.symmetric(_lnkd_ssd_oneway(), name="LNKD-SSD")


def lnkd_disk() -> WARSDistributions:
    """LinkedIn Voldemort on spinning disks: heavy write tail, SSD-like A=R=S."""
    return WARSDistributions.write_specialised(
        write=_lnkd_disk_write_oneway(), other=_lnkd_ssd_oneway(), name="LNKD-DISK"
    )


def ymmr() -> WARSDistributions:
    """Yammer Riak fit: separate write and non-write one-way distributions."""
    return WARSDistributions.write_specialised(
        write=_ymmr_write_oneway(), other=_ymmr_other_oneway(), name="YMMR"
    )


def wan(replica_count: int = 3, wan_delay_ms: float = 75.0) -> WARSDistributions:
    """The paper's WAN scenario for ``replica_count`` replicas.

    One replica is local (LNKD-DISK service times); every other replica's
    one-way messages are additionally delayed by ``wan_delay_ms``.  Reads and
    writes originate in a random datacenter, which the Monte Carlo kernel
    models by shuffling replica columns per trial.
    """
    if replica_count <= 0:
        raise ConfigurationError(f"replica count must be positive, got {replica_count}")
    local_write = _lnkd_disk_write_oneway()
    local_other = _lnkd_ssd_oneway()
    return WARSDistributions(
        w=wan_replica_model(local_write, replica_count, wan_delay_ms, name="WAN-W"),
        a=wan_replica_model(local_other, replica_count, wan_delay_ms, name="WAN-A"),
        r=wan_replica_model(local_other, replica_count, wan_delay_ms, name="WAN-R"),
        s=wan_replica_model(local_other, replica_count, wan_delay_ms, name="WAN-S"),
        name="WAN",
    )


_FACTORY_BY_NAME: dict[str, Callable[[], WARSDistributions]] = {
    "LNKD-SSD": lnkd_ssd,
    "LNKD-DISK": lnkd_disk,
    "YMMR": ymmr,
    "WAN": wan,
}

#: Names accepted by :func:`production_fit`, in the order used by the paper's figures.
PRODUCTION_FIT_NAMES: tuple[str, ...] = tuple(_FACTORY_BY_NAME)


def production_fit(name: str, **kwargs: object) -> WARSDistributions:
    """Look up a production fit by its paper name (case-insensitive).

    ``kwargs`` are forwarded to the factory, which currently only matters for
    ``WAN`` (``replica_count``, ``wan_delay_ms``).  Parameters the chosen
    factory does not accept raise :class:`ConfigurationError` (not a bare
    ``TypeError``), so e.g. ``production_fit("YMMR", replica_count=5)`` fails
    with a message naming the fit and its accepted parameters.
    """
    key = name.upper().replace("_", "-")
    try:
        factory = _FACTORY_BY_NAME[key]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown production fit {name!r}; expected one of {', '.join(PRODUCTION_FIT_NAMES)}"
        ) from exc
    if kwargs:
        accepted = inspect.signature(factory).parameters
        unknown = sorted(set(kwargs) - set(accepted))
        if unknown:
            accepted_text = (
                f"accepted parameters: {', '.join(accepted)}"
                if accepted
                else "it accepts no parameters"
            )
            raise ConfigurationError(
                f"production fit {key!r} does not accept "
                f"{', '.join(repr(k) for k in unknown)}; {accepted_text}"
            )
    return factory(**kwargs)  # type: ignore[arg-type]
