"""Latency-distribution substrate for the PBS reproduction.

This subpackage provides every latency model used by the paper's evaluation:
parametric distributions (exponential, Pareto, uniform, normal, …), the
Table 3 production mixture fits, empirical distributions built from traces,
per-replica composites for the WAN scenario, and the §5.5 fitting procedure
that derives mixtures from percentile summaries.
"""

from repro.latency.base import (
    DEFAULT_PERCENTILES,
    DistributionSummary,
    LatencyDistribution,
    as_rng,
)
from repro.latency.composite import (
    PerReplicaLatency,
    ReplicaLatencyModel,
    uniform_replica_model,
    wan_replica_model,
)
from repro.latency.distributions import (
    ConstantLatency,
    ExponentialLatency,
    LogNormalLatency,
    NormalLatency,
    ParetoLatency,
    ScaledLatency,
    ShiftedLatency,
    UniformLatency,
)
from repro.latency.empirical import EmpiricalDistribution, QuantileTableDistribution
from repro.latency.fitting import FitResult, evaluate_fit, fit_pareto_exponential
from repro.latency.mixture import (
    MixtureComponent,
    MixtureDistribution,
    pareto_exponential_mixture,
)
from repro.latency.percentiles import (
    merge_percentile_tables,
    normalized_rmse,
    percentile_table,
    rmse,
    summary_from_samples,
)
from repro.latency.production import (
    LINKEDIN_DISK_SUMMARY,
    LINKEDIN_SSD_SUMMARY,
    PRODUCTION_FIT_NAMES,
    WARSDistributions,
    YAMMER_READ_SUMMARY,
    YAMMER_WRITE_SUMMARY,
    lnkd_disk,
    lnkd_ssd,
    production_fit,
    wan,
    ymmr,
)

__all__ = [
    "DEFAULT_PERCENTILES",
    "DistributionSummary",
    "LatencyDistribution",
    "as_rng",
    "PerReplicaLatency",
    "ReplicaLatencyModel",
    "uniform_replica_model",
    "wan_replica_model",
    "ConstantLatency",
    "ExponentialLatency",
    "LogNormalLatency",
    "NormalLatency",
    "ParetoLatency",
    "ScaledLatency",
    "ShiftedLatency",
    "UniformLatency",
    "EmpiricalDistribution",
    "QuantileTableDistribution",
    "FitResult",
    "evaluate_fit",
    "fit_pareto_exponential",
    "MixtureComponent",
    "MixtureDistribution",
    "pareto_exponential_mixture",
    "merge_percentile_tables",
    "normalized_rmse",
    "percentile_table",
    "rmse",
    "summary_from_samples",
    "LINKEDIN_DISK_SUMMARY",
    "LINKEDIN_SSD_SUMMARY",
    "PRODUCTION_FIT_NAMES",
    "WARSDistributions",
    "YAMMER_READ_SUMMARY",
    "YAMMER_WRITE_SUMMARY",
    "lnkd_disk",
    "lnkd_ssd",
    "production_fit",
    "wan",
    "ymmr",
]
