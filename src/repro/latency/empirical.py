"""Empirical latency distributions built from observed samples.

The paper validates WARS by instrumenting a live store, collecting per-message
latencies, and replaying the *empirical* distributions through the Monte Carlo
predictor (§5.2).  :class:`EmpiricalDistribution` supports exactly that flow:
collect samples from the cluster simulator (or from a real system's logs),
wrap them, and feed them to :class:`repro.core.wars.WARSModel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import DistributionError
from repro.latency.base import LatencyDistribution

__all__ = ["EmpiricalDistribution", "QuantileTableDistribution"]


@dataclass(frozen=True, repr=False)
class EmpiricalDistribution(LatencyDistribution):
    """Resample-with-replacement distribution over observed latencies (ms)."""

    observations: np.ndarray
    name: str = "empirical"

    def __post_init__(self) -> None:
        observations = np.asarray(self.observations, dtype=float)
        if observations.ndim != 1 or observations.size == 0:
            raise DistributionError("empirical distribution requires a non-empty 1-D sample")
        if np.any(~np.isfinite(observations)) or np.any(observations < 0):
            raise DistributionError("empirical observations must be finite and non-negative")
        object.__setattr__(self, "observations", observations)

    @classmethod
    def from_samples(
        cls, samples: Iterable[float], name: str = "empirical"
    ) -> "EmpiricalDistribution":
        """Build from any iterable of latency observations."""
        return cls(observations=np.fromiter(samples, dtype=float), name=name)

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        return rng.choice(self.observations, size=size, replace=True)

    def mean(self) -> float:
        return float(np.mean(self.observations))

    def variance(self) -> float:
        return float(np.var(self.observations))

    def cdf(self, x: float) -> float:
        return float(np.mean(self.observations <= x))

    def ppf(self, q: float) -> float:
        if not 0.0 <= q <= 1.0:
            raise DistributionError(f"quantile must be in [0, 1], got {q}")
        return float(np.quantile(self.observations, q))

    def __len__(self) -> int:
        return int(self.observations.size)


@dataclass(frozen=True, repr=False)
class QuantileTableDistribution(LatencyDistribution):
    """A distribution defined by a table of (quantile, latency) knots.

    Sampling draws a uniform quantile and linearly interpolates between knots,
    which is the standard way to turn a published percentile table (such as
    the paper's Tables 1 and 2) directly into a sampleable distribution
    without committing to a parametric form.  The table must start at
    quantile 0 and end at quantile 1.
    """

    quantiles: np.ndarray
    latencies: np.ndarray
    name: str = "quantile-table"
    _mean_cache: float = field(default=float("nan"), compare=False)

    def __post_init__(self) -> None:
        quantiles = np.asarray(self.quantiles, dtype=float)
        latencies = np.asarray(self.latencies, dtype=float)
        if quantiles.shape != latencies.shape or quantiles.ndim != 1:
            raise DistributionError("quantile table requires matching 1-D arrays")
        if quantiles.size < 2:
            raise DistributionError("quantile table requires at least two knots")
        if quantiles[0] != 0.0 or quantiles[-1] != 1.0:
            raise DistributionError("quantile table must span quantiles 0.0 through 1.0")
        if np.any(np.diff(quantiles) <= 0):
            raise DistributionError("quantile knots must be strictly increasing")
        if np.any(np.diff(latencies) < 0):
            raise DistributionError("latency knots must be non-decreasing")
        if np.any(latencies < 0):
            raise DistributionError("latency knots must be non-negative")
        object.__setattr__(self, "quantiles", quantiles)
        object.__setattr__(self, "latencies", latencies)
        # Mean of a piecewise-linear quantile function is the average of
        # trapezoid areas over the quantile axis.
        segment_means = (latencies[:-1] + latencies[1:]) / 2.0
        mean = float(np.sum(segment_means * np.diff(quantiles)))
        object.__setattr__(self, "_mean_cache", mean)

    @classmethod
    def from_percentiles(
        cls,
        percentile_latencies: Sequence[tuple[float, float]],
        minimum: float,
        maximum: float,
        name: str = "quantile-table",
    ) -> "QuantileTableDistribution":
        """Construct from (percentile, latency) pairs plus explicit min and max."""
        pairs = sorted(percentile_latencies)
        quantiles = [0.0] + [p / 100.0 for p, _ in pairs] + [1.0]
        latencies = [minimum] + [latency for _, latency in pairs] + [maximum]
        return cls(
            quantiles=np.asarray(quantiles), latencies=np.asarray(latencies), name=name
        )

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        uniforms = rng.random(size)
        return self.validate_samples(np.interp(uniforms, self.quantiles, self.latencies))

    def mean(self) -> float:
        return self._mean_cache

    def ppf(self, q: float) -> float:
        if not 0.0 <= q <= 1.0:
            raise DistributionError(f"quantile must be in [0, 1], got {q}")
        return float(np.interp(q, self.quantiles, self.latencies))

    def cdf(self, x: float) -> float:
        if x <= self.latencies[0]:
            return 0.0
        if x >= self.latencies[-1]:
            return 1.0
        return float(np.interp(x, self.latencies, self.quantiles))
