"""Empirical latency distributions built from observed samples.

The paper validates WARS by instrumenting a live store, collecting per-message
latencies, and replaying the *empirical* distributions through the Monte Carlo
predictor (§5.2).  :class:`EmpiricalDistribution` supports exactly that flow:
collect samples from the cluster simulator (or from a real system's logs),
wrap them, and feed them to :class:`repro.core.wars.WARSModel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import DistributionError
from repro.latency.base import LatencyDistribution

__all__ = ["EmpiricalDistribution", "QuantileTableDistribution"]


@dataclass(frozen=True, repr=False)
class EmpiricalDistribution(LatencyDistribution):
    """Resample-with-replacement distribution over observed latencies (ms)."""

    observations: np.ndarray
    name: str = "empirical"

    def __post_init__(self) -> None:
        observations = np.asarray(self.observations, dtype=float)
        if observations.ndim != 1 or observations.size == 0:
            raise DistributionError("empirical distribution requires a non-empty 1-D sample")
        if np.any(~np.isfinite(observations)) or np.any(observations < 0):
            raise DistributionError("empirical observations must be finite and non-negative")
        object.__setattr__(self, "observations", observations)

    @classmethod
    def from_samples(
        cls, samples: Iterable[float], name: str = "empirical"
    ) -> "EmpiricalDistribution":
        """Build from any iterable of latency observations."""
        return cls(observations=np.fromiter(samples, dtype=float), name=name)

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        # rng.integers + fancy indexing is the fast path for uniform
        # resampling; rng.choice routes through a generic weighted-draw
        # machinery that is several times slower for this common case.
        return self.observations[rng.integers(0, self.observations.size, size=size)]

    def mean(self) -> float:
        return float(np.mean(self.observations))

    def variance(self) -> float:
        return float(np.var(self.observations))

    def cdf(self, x: float) -> float:
        return float(np.mean(self.observations <= x))

    def ppf(self, q: float) -> float:
        if not 0.0 <= q <= 1.0:
            raise DistributionError(f"quantile must be in [0, 1], got {q}")
        return float(np.quantile(self.observations, q))

    def __len__(self) -> int:
        return int(self.observations.size)


@dataclass(frozen=True, repr=False)
class QuantileTableDistribution(LatencyDistribution):
    """A distribution defined by a table of (quantile, latency) knots.

    Sampling draws a uniform quantile and linearly interpolates between knots,
    which is the standard way to turn a published percentile table (such as
    the paper's Tables 1 and 2) directly into a sampleable distribution
    without committing to a parametric form.  The table must start at
    quantile 0 and end at quantile 1.
    """

    quantiles: np.ndarray
    latencies: np.ndarray
    name: str = "quantile-table"
    _mean_cache: float = field(default=float("nan"), compare=False)
    _variance_cache: float = field(default=float("nan"), compare=False)

    def __post_init__(self) -> None:
        quantiles = np.asarray(self.quantiles, dtype=float)
        latencies = np.asarray(self.latencies, dtype=float)
        if quantiles.shape != latencies.shape or quantiles.ndim != 1:
            raise DistributionError("quantile table requires matching 1-D arrays")
        if quantiles.size < 2:
            raise DistributionError("quantile table requires at least two knots")
        if quantiles[0] != 0.0 or quantiles[-1] != 1.0:
            raise DistributionError("quantile table must span quantiles 0.0 through 1.0")
        if np.any(np.diff(quantiles) <= 0):
            raise DistributionError("quantile knots must be strictly increasing")
        if np.any(np.diff(latencies) < 0):
            raise DistributionError("latency knots must be non-decreasing")
        if np.any(latencies < 0):
            raise DistributionError("latency knots must be non-negative")
        object.__setattr__(self, "quantiles", quantiles)
        object.__setattr__(self, "latencies", latencies)
        # Mean of a piecewise-linear quantile function is the average of
        # trapezoid areas over the quantile axis.
        masses = np.diff(quantiles)
        segment_means = (latencies[:-1] + latencies[1:]) / 2.0
        mean = float(np.sum(segment_means * masses))
        object.__setattr__(self, "_mean_cache", mean)
        # E[X^2] of a linear segment a->b is (a^2 + ab + b^2) / 3, so the
        # second moment is one more weighted segment sum and the variance
        # needs no sampling fallback.
        a, b = latencies[:-1], latencies[1:]
        second_moment = float(np.sum(masses * (a * a + a * b + b * b) / 3.0))
        object.__setattr__(self, "_variance_cache", second_moment - mean * mean)

    @classmethod
    def from_percentiles(
        cls,
        percentile_latencies: Sequence[tuple[float, float]],
        minimum: float,
        maximum: float,
        name: str = "quantile-table",
    ) -> "QuantileTableDistribution":
        """Construct from (percentile, latency) pairs plus explicit min and max."""
        pairs = sorted(percentile_latencies)
        quantiles = [0.0] + [p / 100.0 for p, _ in pairs] + [1.0]
        latencies = [minimum] + [latency for _, latency in pairs] + [maximum]
        return cls(
            quantiles=np.asarray(quantiles), latencies=np.asarray(latencies), name=name
        )

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        uniforms = rng.random(size)
        return self.validate_samples(np.interp(uniforms, self.quantiles, self.latencies))

    def mean(self) -> float:
        return self._mean_cache

    def variance(self) -> float:
        """Exact variance of the piecewise-linear quantile function (ms²)."""
        return self._variance_cache

    def ppf(self, q: float) -> float:
        if not 0.0 <= q <= 1.0:
            raise DistributionError(f"quantile must be in [0, 1], got {q}")
        return float(np.interp(q, self.quantiles, self.latencies))

    def cdf(self, x: float) -> float:
        """``P(X <= x)`` as the generalised inverse of the quantile table.

        Flat latency segments are atoms: the CDF there is the *maximal*
        quantile mapping to that latency (``searchsorted`` with
        ``side="right"``), which keeps the CDF right-continuous and the
        ``cdf(ppf(0.0))`` round trip truthful at the lower boundary.  Feeding
        the raw knots to ``np.interp`` would be wrong twice over: its result
        at duplicate x-knots is underspecified, and linearly bridging a flat
        segment smears the atom's mass across the neighbouring latencies.
        """
        latencies = self.latencies
        if x < latencies[0]:
            return 0.0
        if x >= latencies[-1]:
            return 1.0
        # Rightmost knot with latency <= x; at a flat segment this lands on
        # the segment's last knot, i.e. the maximal quantile of the atom.
        index = int(np.searchsorted(latencies, x, side="right")) - 1
        if latencies[index] == x:
            return float(self.quantiles[index])
        # Strictly inside (latencies[index], latencies[index + 1]): because
        # ``index`` is the last occurrence of its latency, this span is
        # strictly increasing and ordinary interpolation is well defined.
        span = latencies[index + 1] - latencies[index]
        fraction = (x - latencies[index]) / span
        return float(
            self.quantiles[index]
            + fraction * (self.quantiles[index + 1] - self.quantiles[index])
        )
