"""Fitting mixture latency models to percentile summaries (paper §5.5).

The production data available to the paper's authors (and to us) is a set of
summary statistics — a handful of percentiles and a mean — rather than raw
traces.  The paper fits each one-way latency distribution with a
two-component mixture (Pareto body + exponential tail) chosen to minimise the
normalised RMSE between the fit's percentiles and the published ones.

:func:`fit_pareto_exponential` reproduces that procedure with a coarse grid
search refined by ``scipy.optimize.minimize`` (Nelder–Mead), which is robust
for this low-dimensional, noisy objective and requires no gradients.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np
from scipy import optimize

from repro.exceptions import DistributionError
from repro.latency.base import LatencyDistribution
from repro.latency.mixture import MixtureDistribution, pareto_exponential_mixture
from repro.latency.percentiles import normalized_rmse, rmse

__all__ = [
    "DEFAULT_FIT_PERCENTILES",
    "FitResult",
    "evaluate_fit",
    "fit_from_observations",
    "fit_pareto_exponential",
]

#: Percentiles summarised from raw observations by :func:`fit_from_observations`,
#: mirroring the shape of the paper's production tables (Tables 1 and 2).
DEFAULT_FIT_PERCENTILES: tuple[float, ...] = (50.0, 75.0, 95.0, 98.0, 99.0, 99.9)


@dataclass(frozen=True)
class FitResult:
    """Outcome of fitting a mixture to a percentile summary."""

    distribution: MixtureDistribution
    pareto_weight: float
    xm: float
    alpha: float
    exponential_rate: float
    n_rmse: float

    def describe(self) -> str:
        """One-line, Table 3 style description of the fit."""
        return (
            f"{self.pareto_weight * 100:.1f}%: Pareto(xm={self.xm:.3g}, alpha={self.alpha:.3g}); "
            f"{(1 - self.pareto_weight) * 100:.1f}%: Exp(lambda={self.exponential_rate:.3g}); "
            f"N-RMSE={self.n_rmse * 100:.2f}%"
        )


def _percentile_targets(
    percentiles: Mapping[float, float]
) -> tuple[np.ndarray, np.ndarray]:
    """Split a ``{percentile: latency}`` mapping into sorted arrays."""
    if not percentiles:
        raise DistributionError("at least one percentile is required to fit a distribution")
    points = np.array(sorted(percentiles), dtype=float)
    values = np.array([percentiles[p] for p in points], dtype=float)
    if np.any(points <= 0) or np.any(points >= 100):
        raise DistributionError("fit percentiles must lie strictly between 0 and 100")
    if np.any(values < 0):
        raise DistributionError("fit latencies must be non-negative")
    return points, values


def _target_spread(values: np.ndarray) -> float:
    """Normalisation scale for the fit objective and N-RMSE metric.

    Degenerate summaries — a single percentile, or a flat table where every
    percentile quotes the same latency — have zero range, which would make
    the paper's N-RMSE undefined mid-fit.  Fall back to the flat level
    itself (relative error), or 1.0 when even that is zero.
    """
    spread = float(np.max(values) - np.min(values))
    if spread > 0.0:
        return spread
    return float(np.max(np.abs(values))) or 1.0


def evaluate_fit(
    distribution: LatencyDistribution,
    percentiles: Mapping[float, float],
    samples: int = 200_000,
    seed: int = 0,
) -> float:
    """Return the N-RMSE between a distribution's percentiles and target percentiles.

    Zero-range targets (single-percentile or flat summaries) are normalised
    by the flat latency level instead of the (zero) range, so the fit path
    never raises mid-optimisation.
    """
    points, values = _percentile_targets(percentiles)
    draws = distribution.sample(samples, np.random.default_rng(seed))
    predicted = np.percentile(draws, points)
    spread = float(np.max(values) - np.min(values))
    if spread == 0.0:
        return rmse(predicted, values) / _target_spread(values)
    return normalized_rmse(predicted, values)


def _candidate_objective(
    params: Sequence[float],
    points: np.ndarray,
    values: np.ndarray,
    probe: np.ndarray,
) -> float:
    """Analytic (quantile-free) objective used during optimisation.

    The mixture CDF is analytic, so rather than sampling we evaluate the
    mixture CDF on a latency grid and interpolate the quantiles from it.
    ``params`` is ``(logit_weight, log_xm, log_alpha, log_rate)``.
    """
    logit_weight, log_xm, log_alpha, log_rate = params
    weight = 1.0 / (1.0 + np.exp(-logit_weight))
    xm = float(np.exp(log_xm))
    alpha = float(np.exp(log_alpha))
    rate = float(np.exp(log_rate))
    # Guard rails against degenerate fits: the exponential tail must stay in
    # the same order of magnitude as the observed latencies (otherwise the
    # optimiser can "hide" an absurd tail behind a vanishing weight), and the
    # body must retain a non-trivial share of the mass.
    max_target = float(np.max(values))
    if max_target <= 0.0:
        return 1e6
    if rate < 1.0 / (20.0 * max_target) or not 0.2 <= weight <= 0.995:
        return 1e6
    try:
        mixture = pareto_exponential_mixture(weight, xm, alpha, rate)
    except DistributionError:
        return 1e6
    cdf_values = np.array([mixture.cdf(x) for x in probe])
    # Quantile via inverse interpolation of the CDF over the probe grid.
    predicted = np.interp(points / 100.0, cdf_values, probe)
    if np.any(~np.isfinite(predicted)):
        return 1e6
    return float(np.sqrt(np.mean((predicted - values) ** 2)) / _target_spread(values))


def fit_from_observations(
    observations: Sequence[float] | np.ndarray,
    percentiles: Sequence[float] = DEFAULT_FIT_PERCENTILES,
    grid_refinements: int = 3,
    seed: int = 0,
) -> FitResult:
    """Summarise raw latency observations and fit the §5.5 mixture to them.

    This is the streaming-refit path used by :mod:`repro.serving`: a tenant's
    bounded observation reservoir is reduced to the same percentile-summary
    shape as the paper's production tables and handed to
    :func:`fit_pareto_exponential`, so periodic online refits and one-shot
    table fits share a single code path — and a single determinism contract
    (identical observations produce an identical :class:`FitResult`).

    Args
    ----
    observations:
        Raw latency samples in milliseconds (1-D, finite, non-negative).
    percentiles:
        Percentiles (strictly between 0 and 100) summarised before fitting.
    grid_refinements / seed:
        Forwarded to :func:`fit_pareto_exponential`.
    """
    values = np.asarray(observations, dtype=float)
    if values.ndim != 1 or values.size == 0:
        raise DistributionError("fitting requires a non-empty 1-D observation array")
    if np.any(~np.isfinite(values)) or np.any(values < 0):
        raise DistributionError("observations must be finite and non-negative")
    points = np.asarray(sorted(set(float(p) for p in percentiles)), dtype=float)
    if points.size == 0:
        raise DistributionError("at least one percentile is required to fit a distribution")
    summary = {
        float(p): float(v) for p, v in zip(points, np.percentile(values, points))
    }
    return fit_pareto_exponential(
        summary,
        mean_hint=float(values.mean()),
        grid_refinements=grid_refinements,
        seed=seed,
    )


def fit_pareto_exponential(
    percentiles: Mapping[float, float],
    mean_hint: float | None = None,
    grid_refinements: int = 3,
    seed: int = 0,
) -> FitResult:
    """Fit a Pareto-body + exponential-tail mixture to a percentile summary.

    Parameters
    ----------
    percentiles:
        ``{percentile: latency_ms}`` targets, e.g. ``{50: 3.75, 95: 5.2, 99.9: 32.89}``.
    mean_hint:
        Optional published mean; used only to seed the search, not as a
        constraint (heavy tails make summary means unreliable targets).
    grid_refinements:
        Number of Nelder–Mead restarts from the best grid candidates.
    seed:
        Seed for the final Monte Carlo N-RMSE evaluation.
    """
    points, values = _percentile_targets(percentiles)
    median = float(np.interp(50.0, points, values)) if points.size > 1 else float(values[0])
    scale_guess = mean_hint if mean_hint and mean_hint > 0 else max(median, 1e-3)

    # Latency probe grid for CDF inversion: log-spaced past the largest target.
    upper = max(float(np.max(values)) * 50.0, scale_guess * 100.0)
    probe = np.concatenate(
        [[0.0], np.logspace(np.log10(max(min(values) / 100.0, 1e-4)), np.log10(upper), 4000)]
    )

    # Coarse grid over plausible parameter ranges.
    weight_grid = [0.5, 0.8, 0.9, 0.95, 0.98]
    xm_grid = [scale_guess * f for f in (0.1, 0.3, 0.6, 1.0)]
    alpha_grid = [1.5, 2.5, 4.0, 8.0]
    rate_grid = [1.0 / (scale_guess * f) for f in (2.0, 5.0, 20.0, 100.0)]

    candidates: list[tuple[float, tuple[float, float, float, float]]] = []
    for weight in weight_grid:
        for xm in xm_grid:
            for alpha in alpha_grid:
                for rate in rate_grid:
                    params = (
                        float(np.log(weight / (1.0 - weight))),
                        float(np.log(xm)),
                        float(np.log(alpha)),
                        float(np.log(rate)),
                    )
                    score = _candidate_objective(params, points, values, probe)
                    candidates.append((score, params))
    candidates.sort(key=lambda item: item[0])

    best_params = candidates[0][1]
    best_score = candidates[0][0]
    for _, start in candidates[:grid_refinements]:
        result = optimize.minimize(
            _candidate_objective,
            x0=np.array(start),
            args=(points, values, probe),
            method="Nelder-Mead",
            options={"maxiter": 2000, "xatol": 1e-4, "fatol": 1e-6},
        )
        if result.fun < best_score:
            best_score = float(result.fun)
            best_params = tuple(result.x)  # type: ignore[assignment]

    logit_weight, log_xm, log_alpha, log_rate = best_params
    weight = float(1.0 / (1.0 + np.exp(-logit_weight)))
    xm = float(np.exp(log_xm))
    alpha = float(np.exp(log_alpha))
    rate = float(np.exp(log_rate))
    mixture = pareto_exponential_mixture(weight, xm, alpha, rate, name="fitted")
    n_rmse = evaluate_fit(mixture, percentiles, seed=seed)
    return FitResult(
        distribution=mixture,
        pareto_weight=weight,
        xm=xm,
        alpha=alpha,
        exponential_rate=rate,
        n_rmse=n_rmse,
    )
