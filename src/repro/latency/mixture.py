"""Mixture latency distributions.

Every production fit in Table 3 of the paper is a two-component mixture: a
Pareto body capturing the common case and an exponential tail capturing
garbage-collection pauses, fsync stalls, and other rare slow events.  The
:class:`MixtureDistribution` here supports an arbitrary number of weighted
components so the same machinery also serves ablations (e.g. three-component
fits) and synthetic long-tail studies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.exceptions import DistributionError
from repro.latency.base import LatencyDistribution
from repro.latency.distributions import ExponentialLatency, ParetoLatency

__all__ = ["MixtureComponent", "MixtureDistribution", "pareto_exponential_mixture"]


@dataclass(frozen=True)
class MixtureComponent:
    """One weighted component of a mixture distribution."""

    weight: float
    distribution: LatencyDistribution

    def __post_init__(self) -> None:
        if not 0.0 <= self.weight <= 1.0:
            raise DistributionError(f"mixture weight must be in [0, 1], got {self.weight}")


@dataclass(frozen=True, repr=False)
class MixtureDistribution(LatencyDistribution):
    """A finite mixture of latency distributions with weights summing to one."""

    components: tuple[MixtureComponent, ...]
    name: str = "mixture"

    def __post_init__(self) -> None:
        if not self.components:
            raise DistributionError("mixture requires at least one component")
        total = sum(component.weight for component in self.components)
        if abs(total - 1.0) > 1e-9:
            raise DistributionError(f"mixture weights must sum to 1, got {total}")

    @classmethod
    def from_pairs(
        cls,
        pairs: Sequence[tuple[float, LatencyDistribution]],
        name: str = "mixture",
    ) -> "MixtureDistribution":
        """Construct from ``(weight, distribution)`` pairs."""
        components = tuple(MixtureComponent(weight, dist) for weight, dist in pairs)
        return cls(components=components, name=name)

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        weights = np.array([component.weight for component in self.components])
        choices = rng.choice(len(self.components), size=size, p=weights)
        samples = np.empty(size, dtype=float)
        for index, component in enumerate(self.components):
            mask = choices == index
            count = int(np.sum(mask))
            if count:
                samples[mask] = component.distribution.sample(count, rng)
        return self.validate_samples(samples)

    def mean(self) -> float:
        return sum(
            component.weight * component.distribution.mean() for component in self.components
        )

    def variance(self) -> float:
        # Law of total variance: Var = E[Var | component] + Var(E | component).
        mean = self.mean()
        within = sum(
            component.weight * component.distribution.variance()
            for component in self.components
        )
        between = sum(
            component.weight * (component.distribution.mean() - mean) ** 2
            for component in self.components
        )
        return within + between

    def cdf(self, x: float) -> float:
        return sum(
            component.weight * component.distribution.cdf(x) for component in self.components
        )

    def ppf(self, q: float) -> float:
        # The mixture CDF has no closed-form inverse, but each component's ppf
        # brackets the mixture quantile (the mixture CDF is a weighted average
        # of the component CDFs), so bisect the analytic cdf between the
        # smallest and largest component quantiles.
        if not 0.0 <= q <= 1.0:
            raise DistributionError(f"quantile must be in [0, 1], got {q}")
        component_quantiles = [
            component.distribution.ppf(q)
            for component in self.components
            if component.weight > 0.0
        ]
        low = min(component_quantiles)
        high = max(component_quantiles)
        if not np.isfinite(high):
            return float(np.inf)
        if high - low <= 1e-12:
            return low
        for _ in range(200):
            mid = 0.5 * (low + high)
            if self.cdf(mid) < q:
                low = mid
            else:
                high = mid
            if high - low <= 1e-12 * max(1.0, abs(high)):
                break
        return high


def pareto_exponential_mixture(
    pareto_weight: float,
    xm: float,
    alpha: float,
    exponential_rate: float,
    name: str = "pareto+exp",
) -> MixtureDistribution:
    """Build the Table 3 style mixture: a Pareto body with an exponential tail.

    Parameters mirror the paper's notation: ``xm`` and ``alpha`` describe the
    Pareto body, ``exponential_rate`` is the tail's ``λ`` (per millisecond),
    and ``pareto_weight`` is the fraction of operations drawn from the body.
    """
    if not 0.0 <= pareto_weight <= 1.0:
        raise DistributionError(f"pareto weight must be in [0, 1], got {pareto_weight}")
    return MixtureDistribution.from_pairs(
        [
            (pareto_weight, ParetoLatency(xm=xm, alpha=alpha)),
            (1.0 - pareto_weight, ExponentialLatency(rate=exponential_rate)),
        ],
        name=name,
    )
