"""Parametric latency distributions.

These are the building blocks used throughout the paper's evaluation:

* :class:`ExponentialLatency` — the synthetic sweeps of §5.3 / Figure 4 use
  exponential one-way latencies parameterised by rate ``λ`` (mean ``1/λ`` ms).
* :class:`ParetoLatency` — the body of every production fit in Table 3.
* :class:`UniformLatency`, :class:`NormalLatency` — used by the paper to study
  fixed-mean / variable-variance behaviour (§5.3).
* :class:`ConstantLatency`, :class:`LogNormalLatency`, :class:`ShiftedLatency`,
  :class:`ScaledLatency` — utility distributions for composing scenarios such
  as the WAN model (a constant inter-datacenter delay added to a local
  distribution).

All distributions return latencies in milliseconds and are immutable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.exceptions import DistributionError
from repro.latency.base import LatencyDistribution

__all__ = [
    "ExponentialLatency",
    "ParetoLatency",
    "UniformLatency",
    "NormalLatency",
    "LogNormalLatency",
    "ConstantLatency",
    "ShiftedLatency",
    "ScaledLatency",
    "standard_normal_ppf",
]


# Coefficients of Acklam's rational approximation to the inverse standard
# normal CDF (relative error < 1.15e-9 everywhere), refined below with one
# Halley step against ``math.erfc`` to reach machine precision.
_ACKLAM_A = (
    -3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
    1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00,
)
_ACKLAM_B = (
    -5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
    6.680131188771972e01, -1.328068155288572e01,
)
_ACKLAM_C = (
    -7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
    -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00,
)
_ACKLAM_D = (
    7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
    3.754408661907416e00,
)
_ACKLAM_P_LOW = 0.02425


def standard_normal_ppf(q: float) -> float:
    """Inverse CDF of the standard normal distribution (the probit function).

    Closed-form building block for :meth:`NormalLatency.ppf` and
    :meth:`LogNormalLatency.ppf`: neither :mod:`math` nor :mod:`numpy`
    exposes an inverse error function, so this implements Acklam's rational
    approximation plus one Halley refinement step against ``math.erfc``,
    which lands within a few ulp of the exact quantile across (0, 1).
    Returns ``-inf``/``inf`` at ``q = 0``/``q = 1``.
    """
    if not 0.0 <= q <= 1.0:
        raise DistributionError(f"quantile must be in [0, 1], got {q}")
    if q == 0.0:
        return -math.inf
    if q == 1.0:
        return math.inf
    if q < _ACKLAM_P_LOW:
        z = math.sqrt(-2.0 * math.log(q))
        a, b, c, d, e, f = _ACKLAM_C
        numerator = ((((a * z + b) * z + c) * z + d) * z + e) * z + f
        g, h, i, j = _ACKLAM_D
        denominator = (((g * z + h) * z + i) * z + j) * z + 1.0
        x = numerator / denominator
    elif q > 1.0 - _ACKLAM_P_LOW:
        z = math.sqrt(-2.0 * math.log(1.0 - q))
        a, b, c, d, e, f = _ACKLAM_C
        numerator = ((((a * z + b) * z + c) * z + d) * z + e) * z + f
        g, h, i, j = _ACKLAM_D
        denominator = (((g * z + h) * z + i) * z + j) * z + 1.0
        x = -numerator / denominator
    else:
        z = q - 0.5
        r = z * z
        a, b, c, d, e, f = _ACKLAM_A
        numerator = (((((a * r + b) * r + c) * r + d) * r + e) * r + f) * z
        g, h, i, j, k = _ACKLAM_B
        denominator = ((((g * r + h) * r + i) * r + j) * r + k) * r + 1.0
        x = numerator / denominator
    # One Halley step: error = Phi(x) - q, with Phi via erfc for tail accuracy.
    error = 0.5 * math.erfc(-x / math.sqrt(2.0)) - q
    u = error * math.sqrt(2.0 * math.pi) * math.exp(0.5 * x * x)
    return x - u / (1.0 + 0.5 * x * u)


@dataclass(frozen=True, repr=False)
class ExponentialLatency(LatencyDistribution):
    """Exponential latency with rate ``rate`` per millisecond (mean ``1/rate`` ms).

    The paper writes these as ``W = λ ∈ {0.05, 0.1, 0.2}`` for means of 20, 10
    and 5 ms respectively.
    """

    rate: float
    name: str = "exponential"

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise DistributionError(f"exponential rate must be positive, got {self.rate}")

    @classmethod
    def from_mean(cls, mean_ms: float, name: str = "exponential") -> "ExponentialLatency":
        """Construct from a mean latency in milliseconds."""
        if mean_ms <= 0:
            raise DistributionError(f"mean must be positive, got {mean_ms}")
        return cls(rate=1.0 / mean_ms, name=name)

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        return self.validate_samples(rng.exponential(scale=1.0 / self.rate, size=size))

    def mean(self) -> float:
        return 1.0 / self.rate

    def variance(self) -> float:
        return 1.0 / (self.rate**2)

    def cdf(self, x: float) -> float:
        if x <= 0:
            return 0.0
        return 1.0 - math.exp(-self.rate * x)

    def ppf(self, q: float) -> float:
        if not 0.0 <= q < 1.0:
            if q == 1.0:
                return math.inf
            raise DistributionError(f"quantile must be in [0, 1], got {q}")
        return -math.log(1.0 - q) / self.rate


@dataclass(frozen=True, repr=False)
class ParetoLatency(LatencyDistribution):
    """Pareto (type I) latency with scale ``xm`` (ms) and shape ``alpha``.

    ``P(X > x) = (xm / x) ** alpha`` for ``x >= xm``.  This is the body
    distribution of every production fit in Table 3 of the paper.
    """

    xm: float
    alpha: float
    name: str = "pareto"

    def __post_init__(self) -> None:
        if self.xm <= 0:
            raise DistributionError(f"pareto scale xm must be positive, got {self.xm}")
        if self.alpha <= 0:
            raise DistributionError(f"pareto shape alpha must be positive, got {self.alpha}")

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        # Inverse-transform sampling: X = xm / U^(1/alpha) for U ~ Uniform(0, 1].
        uniforms = rng.random(size)
        # Guard against exactly-zero uniforms which would produce infinities.
        uniforms = np.clip(uniforms, 1e-15, 1.0)
        return self.validate_samples(self.xm / np.power(uniforms, 1.0 / self.alpha))

    def mean(self) -> float:
        if self.alpha <= 1.0:
            return math.inf
        return self.alpha * self.xm / (self.alpha - 1.0)

    def variance(self) -> float:
        if self.alpha <= 2.0:
            return math.inf
        return (self.xm**2 * self.alpha) / ((self.alpha - 1.0) ** 2 * (self.alpha - 2.0))

    def cdf(self, x: float) -> float:
        if x < self.xm:
            return 0.0
        return 1.0 - (self.xm / x) ** self.alpha

    def ppf(self, q: float) -> float:
        if not 0.0 <= q < 1.0:
            if q == 1.0:
                return math.inf
            raise DistributionError(f"quantile must be in [0, 1], got {q}")
        return self.xm / (1.0 - q) ** (1.0 / self.alpha)


@dataclass(frozen=True, repr=False)
class UniformLatency(LatencyDistribution):
    """Uniform latency on ``[low, high]`` milliseconds."""

    low: float
    high: float
    name: str = "uniform"

    def __post_init__(self) -> None:
        if self.low < 0:
            raise DistributionError(f"uniform low bound must be non-negative, got {self.low}")
        if self.high <= self.low:
            raise DistributionError(
                f"uniform high bound must exceed low bound, got [{self.low}, {self.high}]"
            )

    @classmethod
    def from_mean_and_halfwidth(
        cls, mean_ms: float, halfwidth_ms: float, name: str = "uniform"
    ) -> "UniformLatency":
        """Construct a uniform distribution centred on ``mean_ms``."""
        return cls(low=mean_ms - halfwidth_ms, high=mean_ms + halfwidth_ms, name=name)

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        return self.validate_samples(rng.uniform(self.low, self.high, size=size))

    def mean(self) -> float:
        return (self.low + self.high) / 2.0

    def variance(self) -> float:
        return (self.high - self.low) ** 2 / 12.0

    def cdf(self, x: float) -> float:
        if x <= self.low:
            return 0.0
        if x >= self.high:
            return 1.0
        return (x - self.low) / (self.high - self.low)

    def ppf(self, q: float) -> float:
        if not 0.0 <= q <= 1.0:
            raise DistributionError(f"quantile must be in [0, 1], got {q}")
        return self.low + q * (self.high - self.low)


@dataclass(frozen=True, repr=False)
class NormalLatency(LatencyDistribution):
    """Normal latency truncated at zero (negative draws are clipped to zero).

    The paper uses fixed-mean normal distributions with varying variance to
    show that the variance of ``W`` matters more than its mean (§5.3).
    """

    mu: float
    sigma: float
    name: str = "normal"

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise DistributionError(f"normal sigma must be non-negative, got {self.sigma}")

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        draws = rng.normal(loc=self.mu, scale=self.sigma, size=size)
        return self.validate_samples(np.clip(draws, 0.0, None))

    def mean(self) -> float:
        # The clipped mean differs slightly from mu when mass falls below zero;
        # report the analytic mean of the clipped variable.
        if self.sigma == 0:
            return max(self.mu, 0.0)
        z = self.mu / self.sigma
        phi = math.exp(-0.5 * z * z) / math.sqrt(2.0 * math.pi)
        big_phi = 0.5 * (1.0 + math.erf(z / math.sqrt(2.0)))
        return self.mu * big_phi + self.sigma * phi

    def variance(self) -> float:
        # Second moment of the clipped variable max(X, 0) for X ~ N(mu, sigma):
        # E[max(X,0)^2] = (mu^2 + sigma^2) Phi(z) + mu sigma phi(z) with
        # z = mu/sigma, minus the (already clipped-consistent) mean squared.
        if self.sigma == 0:
            return 0.0
        z = self.mu / self.sigma
        phi = math.exp(-0.5 * z * z) / math.sqrt(2.0 * math.pi)
        big_phi = 0.5 * (1.0 + math.erf(z / math.sqrt(2.0)))
        second_moment = (self.mu**2 + self.sigma**2) * big_phi + self.mu * self.sigma * phi
        return max(second_moment - self.mean() ** 2, 0.0)

    def cdf(self, x: float) -> float:
        if x < 0:
            return 0.0
        if self.sigma == 0:
            return 1.0 if x >= self.mu else 0.0
        return 0.5 * (1.0 + math.erf((x - self.mu) / (self.sigma * math.sqrt(2.0))))

    def ppf(self, q: float) -> float:
        if not 0.0 <= q <= 1.0:
            raise DistributionError(f"quantile must be in [0, 1], got {q}")
        if q == 1.0:
            return math.inf if self.sigma > 0 else max(self.mu, 0.0)
        if self.sigma == 0:
            return max(self.mu, 0.0)
        if q == 0.0:
            return 0.0
        return max(0.0, self.mu + self.sigma * standard_normal_ppf(q))


@dataclass(frozen=True, repr=False)
class LogNormalLatency(LatencyDistribution):
    """Log-normal latency with underlying normal parameters ``mu`` and ``sigma``."""

    mu: float
    sigma: float
    name: str = "lognormal"

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise DistributionError(f"lognormal sigma must be non-negative, got {self.sigma}")

    @classmethod
    def from_mean_and_cv(
        cls, mean_ms: float, cv: float, name: str = "lognormal"
    ) -> "LogNormalLatency":
        """Construct from a target mean and coefficient of variation."""
        if mean_ms <= 0:
            raise DistributionError(f"mean must be positive, got {mean_ms}")
        if cv < 0:
            raise DistributionError(f"coefficient of variation must be non-negative, got {cv}")
        sigma_sq = math.log(1.0 + cv**2)
        mu = math.log(mean_ms) - sigma_sq / 2.0
        return cls(mu=mu, sigma=math.sqrt(sigma_sq), name=name)

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        return self.validate_samples(rng.lognormal(mean=self.mu, sigma=self.sigma, size=size))

    def mean(self) -> float:
        return math.exp(self.mu + self.sigma**2 / 2.0)

    def variance(self) -> float:
        return (math.exp(self.sigma**2) - 1.0) * math.exp(2.0 * self.mu + self.sigma**2)

    def cdf(self, x: float) -> float:
        if x <= 0:
            return 0.0
        if self.sigma == 0:
            return 1.0 if math.log(x) >= self.mu else 0.0
        return 0.5 * (1.0 + math.erf((math.log(x) - self.mu) / (self.sigma * math.sqrt(2.0))))

    def ppf(self, q: float) -> float:
        if not 0.0 <= q <= 1.0:
            raise DistributionError(f"quantile must be in [0, 1], got {q}")
        if q == 0.0:
            return 0.0
        if q == 1.0:
            return math.inf if self.sigma > 0 else math.exp(self.mu)
        if self.sigma == 0:
            return math.exp(self.mu)
        return math.exp(self.mu + self.sigma * standard_normal_ppf(q))


@dataclass(frozen=True, repr=False)
class ConstantLatency(LatencyDistribution):
    """A degenerate distribution returning a fixed latency.

    Useful for modelling deterministic components such as the paper's 75 ms
    inter-datacenter delay in the WAN scenario, and for making unit tests
    exact.
    """

    value: float
    name: str = "constant"

    def __post_init__(self) -> None:
        if self.value < 0:
            raise DistributionError(f"constant latency must be non-negative, got {self.value}")

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        return np.full(size, self.value, dtype=float)

    def mean(self) -> float:
        return self.value

    def variance(self) -> float:
        return 0.0

    def cdf(self, x: float) -> float:
        return 1.0 if x >= self.value else 0.0

    def ppf(self, q: float) -> float:
        if not 0.0 <= q <= 1.0:
            raise DistributionError(f"quantile must be in [0, 1], got {q}")
        return self.value


@dataclass(frozen=True, repr=False)
class ShiftedLatency(LatencyDistribution):
    """A base distribution shifted right by a constant offset (ms)."""

    base: LatencyDistribution
    offset: float
    name: str = "shifted"

    def __post_init__(self) -> None:
        if self.offset < 0:
            raise DistributionError(f"shift offset must be non-negative, got {self.offset}")

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        return self.validate_samples(self.base.sample(size, rng) + self.offset)

    def mean(self) -> float:
        return self.base.mean() + self.offset

    def variance(self) -> float:
        return self.base.variance()

    def cdf(self, x: float) -> float:
        return self.base.cdf(x - self.offset)

    def ppf(self, q: float) -> float:
        return self.base.ppf(q) + self.offset


@dataclass(frozen=True, repr=False)
class ScaledLatency(LatencyDistribution):
    """A base distribution scaled by a positive constant factor."""

    base: LatencyDistribution
    factor: float
    name: str = "scaled"

    def __post_init__(self) -> None:
        if self.factor <= 0:
            raise DistributionError(f"scale factor must be positive, got {self.factor}")

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        return self.validate_samples(self.base.sample(size, rng) * self.factor)

    def mean(self) -> float:
        return self.base.mean() * self.factor

    def variance(self) -> float:
        return self.base.variance() * self.factor**2

    def cdf(self, x: float) -> float:
        return self.base.cdf(x / self.factor)

    def ppf(self, q: float) -> float:
        return self.base.ppf(q) * self.factor
