"""Percentile and summary-statistic helpers shared by fitting and analysis code."""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.exceptions import AnalysisError

__all__ = [
    "percentile_table",
    "normalized_rmse",
    "rmse",
    "summary_from_samples",
    "merge_percentile_tables",
]


def percentile_table(
    samples: Sequence[float] | np.ndarray, percentiles: Iterable[float]
) -> dict[float, float]:
    """Compute a ``{percentile: latency}`` table from raw samples."""
    data = np.asarray(samples, dtype=float)
    if data.size == 0:
        raise AnalysisError("cannot compute percentiles of an empty sample")
    points = list(percentiles)
    values = np.percentile(data, points)
    return {float(p): float(v) for p, v in zip(points, values)}


def rmse(predicted: Sequence[float], observed: Sequence[float]) -> float:
    """Root mean squared error between two equal-length sequences."""
    predicted_arr = np.asarray(predicted, dtype=float)
    observed_arr = np.asarray(observed, dtype=float)
    if predicted_arr.shape != observed_arr.shape:
        raise AnalysisError(
            f"shape mismatch: predicted {predicted_arr.shape} vs observed {observed_arr.shape}"
        )
    if predicted_arr.size == 0:
        raise AnalysisError("cannot compute RMSE of empty sequences")
    return float(np.sqrt(np.mean((predicted_arr - observed_arr) ** 2)))


def normalized_rmse(predicted: Sequence[float], observed: Sequence[float]) -> float:
    """RMSE normalised by the observed range, as the paper's N-RMSE metric.

    The paper reports fit quality as N-RMSE percentages; this returns the
    fraction (multiply by 100 for a percentage).  A zero observed range with a
    perfect prediction returns 0; a zero range with errors raises.
    """
    observed_arr = np.asarray(observed, dtype=float)
    error = rmse(predicted, observed)
    spread = float(np.max(observed_arr) - np.min(observed_arr))
    if spread == 0.0:
        if error == 0.0:
            return 0.0
        raise AnalysisError("observed values have zero range; N-RMSE is undefined")
    return error / spread


def summary_from_samples(
    samples: Sequence[float] | np.ndarray, percentiles: Iterable[float]
) -> tuple[float, dict[float, float]]:
    """Return ``(mean, percentile_table)`` for raw samples."""
    data = np.asarray(samples, dtype=float)
    if data.size == 0:
        raise AnalysisError("cannot summarise an empty sample")
    return float(np.mean(data)), percentile_table(data, percentiles)


def merge_percentile_tables(
    tables: Mapping[str, Mapping[float, float]]
) -> dict[float, dict[str, float]]:
    """Pivot ``{series: {percentile: value}}`` into ``{percentile: {series: value}}``.

    Useful for rendering multi-series tables (e.g. read vs write latency)
    with one row per percentile.
    """
    merged: dict[float, dict[str, float]] = {}
    for series, table in tables.items():
        for percentile, value in table.items():
            merged.setdefault(float(percentile), {})[series] = float(value)
    return dict(sorted(merged.items()))
