"""Operation-latency analysis under the WARS model (paper Figure 5, Table 4).

Read latency under Dynamo-style replication is the ``R``-th fastest replica
round trip; write latency is the ``W``-th fastest.  These helpers compute the
resulting latency distributions (CDFs and percentile tables) for any latency
environment and set of quorum sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Mapping, Sequence

import numpy as np

from repro.core.quorum import ReplicaConfig
from repro.core.wars import WARSModel
from repro.exceptions import ConfigurationError
from repro.latency.base import as_rng
from repro.latency.production import WARSDistributions
from repro.montecarlo.engine import DEFAULT_CHUNK_SIZE, ConfigSweepResult, SweepEngine

__all__ = [
    "OperationLatencyCDF",
    "StreamingOperationLatency",
    "operation_latency_cdf",
    "latency_percentile_table",
]


@dataclass(frozen=True)
class OperationLatencyCDF:
    """Empirical CDF of read and write operation latencies for one configuration."""

    config: ReplicaConfig
    label: str
    read_latencies_ms: np.ndarray
    write_latencies_ms: np.ndarray

    @cached_property
    def _sorted_read_latencies_ms(self) -> np.ndarray:
        """Read latencies sorted once; every CDF query is a searchsorted over
        this array, so repeated grids cost O(grid log trials), not a fresh
        O(trials log trials) sort per call."""
        return np.sort(self.read_latencies_ms)

    @cached_property
    def _sorted_write_latencies_ms(self) -> np.ndarray:
        """Write latencies sorted once (see ``_sorted_read_latencies_ms``)."""
        return np.sort(self.write_latencies_ms)

    def read_cdf(self, grid_ms: Sequence[float]) -> list[tuple[float, float]]:
        """``(latency, P(read latency <= latency))`` over a latency grid."""
        sorted_latencies = self._sorted_read_latencies_ms
        grid = np.asarray(list(grid_ms), dtype=float)
        fractions = np.searchsorted(sorted_latencies, grid, side="right") / sorted_latencies.size
        return [(float(x), float(f)) for x, f in zip(grid, fractions)]

    def write_cdf(self, grid_ms: Sequence[float]) -> list[tuple[float, float]]:
        """``(latency, P(write latency <= latency))`` over a latency grid."""
        sorted_latencies = self._sorted_write_latencies_ms
        grid = np.asarray(list(grid_ms), dtype=float)
        fractions = np.searchsorted(sorted_latencies, grid, side="right") / sorted_latencies.size
        return [(float(x), float(f)) for x, f in zip(grid, fractions)]

    def read_percentile(self, percentile: float) -> float:
        """Read latency (ms) at a percentile."""
        return float(np.percentile(self.read_latencies_ms, percentile))

    def write_percentile(self, percentile: float) -> float:
        """Write latency (ms) at a percentile."""
        return float(np.percentile(self.write_latencies_ms, percentile))


@dataclass(frozen=True)
class StreamingOperationLatency:
    """Sketch-backed operation-latency summary for one configuration.

    The streaming counterpart of :class:`OperationLatencyCDF`: the same query
    surface (``read_cdf``/``write_cdf`` over a grid, percentile lookups)
    answered from :class:`~repro.montecarlo.engine.StreamingHistogram`
    sketches instead of retained per-trial arrays, so memory stays bounded
    regardless of the trial count.  CDF and percentile values carry the
    sketches' sub-bin interpolation error (well under 1% at the engine's
    default resolution).
    """

    config: ReplicaConfig
    label: str
    trials: int
    _summary: ConfigSweepResult

    def read_cdf(self, grid_ms: Sequence[float]) -> list[tuple[float, float]]:
        """``(latency, P(read latency <= latency))`` over a latency grid."""
        return [(float(x), self._summary.read_latency_cdf(float(x))) for x in grid_ms]

    def write_cdf(self, grid_ms: Sequence[float]) -> list[tuple[float, float]]:
        """``(latency, P(write latency <= latency))`` over a latency grid."""
        return [(float(x), self._summary.write_latency_cdf(float(x))) for x in grid_ms]

    def read_percentile(self, percentile: float) -> float:
        """Read latency (ms) at a percentile."""
        return self._summary.read_latency_percentile(percentile)

    def write_percentile(self, percentile: float) -> float:
        """Write latency (ms) at a percentile."""
        return self._summary.write_latency_percentile(percentile)


def operation_latency_cdf(
    distributions: WARSDistributions,
    config: ReplicaConfig,
    trials: int = 100_000,
    rng: np.random.Generator | int | None = None,
    label: str | None = None,
    streaming: bool = False,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    workers: int = 1,
    kernel_backend: str | None = None,
) -> OperationLatencyCDF | StreamingOperationLatency:
    """Simulate operation latencies for one configuration.

    By default the raw latency arrays are materialised (exact empirical CDF,
    memory O(trials)).  With ``streaming=True`` (or ``workers > 1``) trials
    stream through :class:`~repro.montecarlo.engine.SweepEngine` in
    ``chunk_size`` pieces — bounded memory for arbitrarily large trial
    counts, optionally sharded across ``workers`` processes — and the result
    is a :class:`StreamingOperationLatency` answering the same queries from
    histogram sketches.  ``kernel_backend`` selects the sampling-reduction
    backend from :mod:`repro.kernels` on either path.
    """
    if trials < 1:
        raise ConfigurationError(f"trial count must be >= 1, got {trials}")
    if streaming or workers > 1:
        engine = SweepEngine(
            distributions,
            (config,),
            chunk_size=chunk_size,
            workers=workers,
            kernel_backend=kernel_backend,
        )
        summary = engine.run(trials, rng).results[0]
        return StreamingOperationLatency(
            config=config,
            label=label or f"{distributions.name} {config.label()}",
            trials=summary.trials,
            _summary=summary,
        )
    model = WARSModel(distributions=distributions, config=config)
    result = model.sample(trials, rng, kernel_backend=kernel_backend)
    return OperationLatencyCDF(
        config=config,
        label=label or f"{distributions.name} {config.label()}",
        read_latencies_ms=result.read_latencies_ms,
        write_latencies_ms=result.commit_latencies_ms,
    )


def latency_percentile_table(
    distributions_by_name: Mapping[str, WARSDistributions],
    configs: Sequence[ReplicaConfig],
    percentiles: Sequence[float] = (50.0, 95.0, 99.0, 99.9),
    trials: int = 100_000,
    rng: np.random.Generator | int | None = None,
) -> list[dict[str, object]]:
    """Per (environment, configuration) rows of read/write latency percentiles."""
    generator = as_rng(rng)
    rows: list[dict[str, object]] = []
    for name, distributions in distributions_by_name.items():
        for config in configs:
            cdf = operation_latency_cdf(distributions, config, trials, generator)
            row: dict[str, object] = {"environment": name, "config": config}
            for percentile in percentiles:
                row[f"read_p{percentile:g}_ms"] = cdf.read_percentile(percentile)
                row[f"write_p{percentile:g}_ms"] = cdf.write_percentile(percentile)
            rows.append(row)
    return rows
