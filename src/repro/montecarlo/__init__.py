"""Monte Carlo harness: t-visibility sweeps, latency CDFs, and convergence tools."""

from repro.montecarlo.convergence import (
    ProbabilityEstimate,
    trials_for_margin,
    wilson_interval,
)
from repro.montecarlo.engine import (
    DEFAULT_ADAPTIVE_CHUNK_SIZE,
    DEFAULT_ADAPTIVE_GRID_MS,
    DEFAULT_CHUNK_SIZE,
    REFINE_ACTIVATION_LAG,
    REFINE_SUBDIVISIONS,
    SAMPLE_BLOCK,
    ConfigSweepResult,
    StreamingHistogram,
    SweepEngine,
    SweepResult,
    min_trials_for_quantile,
)
from repro.montecarlo.latency import (
    OperationLatencyCDF,
    StreamingOperationLatency,
    latency_percentile_table,
    operation_latency_cdf,
)
from repro.montecarlo.tvisibility import (
    TVisibilityCurve,
    t_visibility_table,
    visibility_curve,
    visibility_curves,
)

__all__ = [
    "ProbabilityEstimate",
    "trials_for_margin",
    "wilson_interval",
    "DEFAULT_ADAPTIVE_CHUNK_SIZE",
    "DEFAULT_ADAPTIVE_GRID_MS",
    "DEFAULT_CHUNK_SIZE",
    "REFINE_ACTIVATION_LAG",
    "REFINE_SUBDIVISIONS",
    "SAMPLE_BLOCK",
    "ConfigSweepResult",
    "StreamingHistogram",
    "SweepEngine",
    "SweepResult",
    "min_trials_for_quantile",
    "OperationLatencyCDF",
    "StreamingOperationLatency",
    "latency_percentile_table",
    "operation_latency_cdf",
    "TVisibilityCurve",
    "t_visibility_table",
    "visibility_curve",
    "visibility_curves",
]
