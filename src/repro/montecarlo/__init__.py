"""Monte Carlo harness: t-visibility sweeps, latency CDFs, and convergence tools."""

from repro.montecarlo.convergence import (
    ProbabilityEstimate,
    trials_for_margin,
    wilson_interval,
)
from repro.montecarlo.latency import (
    OperationLatencyCDF,
    latency_percentile_table,
    operation_latency_cdf,
)
from repro.montecarlo.tvisibility import (
    TVisibilityCurve,
    t_visibility_table,
    visibility_curve,
    visibility_curves,
)

__all__ = [
    "ProbabilityEstimate",
    "trials_for_margin",
    "wilson_interval",
    "OperationLatencyCDF",
    "latency_percentile_table",
    "operation_latency_cdf",
    "TVisibilityCurve",
    "t_visibility_table",
    "visibility_curve",
    "visibility_curves",
]
