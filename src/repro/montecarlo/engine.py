"""Shared-sample batched Monte Carlo engine for multi-configuration sweeps.

The paper's evaluation (Figures 4-7, Table 4, the §6 SLA search) repeatedly
evaluates one latency environment under many (R, W) quorum configurations.
The four WARS delay matrices depend only on the latency distributions and the
replication factor ``N`` — not on the quorum sizes — so drawing them once per
batch and reducing every configuration against the shared samples turns an
O(configs x trials) sampling cost into O(trials).

Why one draw is valid across configurations
-------------------------------------------
For a fixed latency environment, a WARS trial is a joint draw of the four
delay matrices ``(W, A, R, S)`` of shape ``(trials, N)``.  The quorum sizes
``R`` and ``W`` enter only through *reductions* of that draw: the commit
latency is the ``W``-th order statistic of ``W[i] + A[i]``, the read latency
the ``R``-th order statistic of ``R[i] + S[i]``, and the staleness threshold
couples the two through the responder order.  Evaluating several
configurations against one draw therefore samples each configuration from
exactly the same distribution as independent draws would — the estimators are
unbiased per configuration — while additionally making the *differences*
between configurations lower-variance, because every configuration sees the
same trials (common random numbers).  What the sharing deliberately preserves
is the per-trial coupling: for one trial, the commit latency, responder order,
and freshness margins come from the same four matrices, so quantities like
"threshold(R=2) <= threshold(R=1)" hold trial-for-trial, not just in
expectation.  What it removes is only the *independence between
configurations*, which none of the paper's per-configuration statistics
require.

Chunking and reproducibility
----------------------------
Trials are processed in fixed-size chunks with streaming accumulation:
consistency counts at the probe times are exact, while staleness thresholds
and operation latencies accumulate into :class:`StreamingHistogram` sketches
whose bin edges are frozen after the first chunk.  Two RNG regimes are
supported:

* Passing a ``numpy.random.Generator`` consumes it sequentially, exactly the
  way :meth:`repro.core.wars.WARSModel.sample` would: a single-chunk run with
  a generator in the same state reproduces the kernel's trials bit-for-bit.
* Passing an integer seed (or ``None``) derives one child stream per internal
  sampling block of ``SAMPLE_BLOCK`` trials from a ``SeedSequence``.  Because
  block boundaries are fixed (chunk sizes are rounded up to a multiple of
  ``SAMPLE_BLOCK``), the sampled trials — and therefore every accumulated
  count — are invariant to the chosen chunk size.

Optional early stopping halts the sweep once the Wilson score interval
(:func:`repro.montecarlo.convergence.wilson_interval`) of every configuration
at every probe time is tighter than a requested half-width tolerance.

Accuracy: consistency probabilities at probe times are exact counts.
Quantities inverted from the sketches (t-visibility, latency percentiles)
carry a sub-bin interpolation error — well under 1% at the default
resolution, and in practice dominated by the seed-to-seed Monte Carlo noise
of the quantile itself at the trial counts the experiments use.  When exact
order statistics are required, run with ``keep_samples=True``: percentile and
t-visibility queries then use the retained per-trial arrays and match
:class:`~repro.core.wars.WARSTrialResult` exactly.

Multiprocess sharding and the merge contract
--------------------------------------------
With ``workers > 1`` a seed-mode sweep shards its chunks across a process
pool.  Correctness rests on two properties:

* *Independent streams.*  Seed mode derives one ``SeedSequence`` child per
  ``SAMPLE_BLOCK`` of trials, keyed by block index, so any process can sample
  any block and obtain exactly the trials the serial loop would have produced
  at that offset.  Chunk boundaries are block-aligned, so a chunk is a
  self-contained span of blocks.
* *Mergeable accumulators.*  All per-configuration state is a commutative
  monoid: exact integer counts (trials, per-probe consistency counts,
  non-positive thresholds) merge by addition, exact extremes by min/max, and
  :class:`StreamingHistogram` sketches merge by bin-wise count addition —
  *provided the bin layouts match*.  Layouts are frozen from the first batch
  of values, which is order-dependent, so the coordinator processes the first
  chunk inline (freezing every layout exactly as a serial run would), then
  hands workers empty accumulators spawned from the frozen layouts
  (:meth:`StreamingHistogram.spawn_empty`).  ``merge(other)`` refuses
  mismatched layouts rather than approximating.

The coordinator merges worker partials strictly in block order and applies
the early-stopping convergence check after each merged chunk — the same
cadence as the serial loop — so ``trials_run``, ``stopped_early``,
``converged``, every count, and every histogram bin are bit-for-bit identical
to the serial seed-mode run, for any worker count.  Early stopping discards
whatever speculative chunks were still in flight.  Two regimes cannot shard
and silently fall back to serial execution: passing a ``numpy.random.Generator``
(the stream is inherently sequential) and ``keep_samples=True`` (shipping the
raw per-trial arrays between processes would cost more than the sampling).

Adaptive probe-grid refinement
------------------------------
The fixed probe grid buys precision near the t-visibility target by paying
for dense probes *everywhere*: every probe's Wilson interval must meet the
early-stopping tolerance, so probes far from the crossing — especially probes
whose consistency probability sits near 0.5, where the interval is widest —
dominate the trial budget.  With ``probe_resolution_ms`` (and one or more
``target_probability`` levels) set, the engine instead starts from the coarse
``times_ms`` grid and refines it around each configuration's
``t_visibility(target)`` crossing:

* At every chunk boundary — the same place the early-stopping check already
  inspects merged partials — the coordinator brackets each (configuration,
  target) crossing on the probes observed so far and, while the bracket is
  wider than ``probe_resolution_ms``, subdivides it into
  :data:`REFINE_SUBDIVISIONS` equal spans (a two-level bisection per round).
* Refined probes apply to *subsequent* chunks only, after a fixed activation
  lag of :data:`REFINE_ACTIVATION_LAG` chunks.  A probe added at trial offset
  ``T`` therefore carries an exact consistency count over the trials in
  ``[T, end)`` — a *grid-versioned* count with its own ``trials_observed``
  denominator — which is an unbiased estimate of the same probability the
  base probes estimate over ``[0, end)``.
* The final :class:`ConfigSweepResult` answers curve and t-visibility queries
  by interpolating over the *union* grid (base probes plus refined probes,
  each normalised by its own observation count), so the crossing is resolved
  to ``probe_resolution_ms`` without densifying the whole grid.

Refinement decisions are made exclusively on merged partials at chunk
boundaries, so they are a pure function of (seed, chunk size) and compose
with multiprocess sharding unchanged: the sharded coordinator keeps at most
``REFINE_ACTIVATION_LAG + 1`` speculative chunks in flight (each worker task
carries the probe set active for its chunk), merges in block order, and makes
the same decisions at the same boundaries as the serial loop — adaptive runs
are bit-for-bit identical for any ``workers`` count.  The merge contract
extends to the grid-versioned counts: worker partials accumulate refined
probes from their task's probe set, and ``merge`` adds counts and observation
totals key-wise, exactly.

Early stopping in adaptive mode keeps the fixed-grid Wilson guarantee where
it matters and drops it where it does not: the sweep stops once (a) every
*base* probe meets the tolerance, (b) every bracket has narrowed to
``probe_resolution_ms``, and (c) the bracket endpoints — the probes the
reported crossing actually rests on — meet the tolerance with their own
observation counts.  Refined probes that fell out of the bracket during
bisection have served their purpose and do not gate stopping; this is what
lets an adaptive sweep converge in fewer trials than a fixed grid of equal
resolution, whose worst probe (the one nearest p = 0.5) sets the budget.

Kernel backends
---------------
The per-chunk sampling reduction (sort + responder argsort + prefix-min) is
pluggable through ``kernel_backend=`` and :mod:`repro.kernels`: ``"numpy"``
is the bit-for-bit reference and the default, ``"numba"`` fuses the
reduction into one ``prange``-parallel JIT kernel (validated statistically
against the reference), and ``"auto"`` picks the fastest available.  The
worker-pool initializer pins each process's BLAS/OpenMP/numba thread pools
to its fair core share before resolving the backend, so chunk sharding and
kernel parallelism compose.
"""

from __future__ import annotations

import multiprocessing
from collections import deque
from dataclasses import dataclass, field
from functools import cached_property
from math import ceil
from typing import Iterator, Mapping, Sequence

import numpy as np

from repro.core.quorum import ReplicaConfig
from repro.core.wars import WARSTrialResult, sample_wars_batch
from repro.exceptions import AnalysisError, ConfigurationError
from repro.kernels import (
    KernelBackend,
    is_registry_instance,
    jit_has_run,
    pin_worker_threads,
    resolve_backend,
)
from repro.latency.production import WARSDistributions
from repro.montecarlo.convergence import ProbabilityEstimate, wilson_interval

__all__ = [
    "SAMPLE_BLOCK",
    "DEFAULT_CHUNK_SIZE",
    "DEFAULT_ADAPTIVE_CHUNK_SIZE",
    "DEFAULT_ADAPTIVE_GRID_MS",
    "REFINE_ACTIVATION_LAG",
    "REFINE_SUBDIVISIONS",
    "StreamingHistogram",
    "ConfigSweepResult",
    "SweepResult",
    "SweepEngine",
    "min_trials_for_quantile",
]

#: Fixed internal sampling granularity (trials per RNG block in seed mode).
#: Chunk sizes are rounded up to a multiple of this so that block boundaries —
#: and therefore seeded sample streams — do not depend on the chunk size.
SAMPLE_BLOCK: int = 8_192

#: Default chunk size (trials accumulated between convergence checks).
DEFAULT_CHUNK_SIZE: int = 65_536

#: Default chunk size for adaptive (``probe_resolution_ms``) sweeps.  Smaller
#: than :data:`DEFAULT_CHUNK_SIZE` because refinement only advances at chunk
#: boundaries: a refinement round needs ``REFINE_ACTIVATION_LAG + 1`` chunks
#: to propose probes, observe them, and re-bracket, so the chunk size bounds
#: how many bisection levels a trial budget can complete.
DEFAULT_ADAPTIVE_CHUNK_SIZE: int = 2 * SAMPLE_BLOCK

#: Chunks between a refinement decision and the first chunk that counts the
#: new probes.  The lag is what lets refinement compose with multiprocess
#: sharding: the grid for chunk ``j`` depends only on merged state through
#: chunk ``j - 1 - lag``, so a sharded coordinator can keep ``lag + 1``
#: speculative chunks in flight and still make — and apply — exactly the
#: decisions the serial loop would.  Fixed (never derived from ``workers``)
#: so that results are bit-for-bit identical for any worker count.
REFINE_ACTIVATION_LAG: int = 2

#: Spans a refinement round splits each too-wide bracket into (3 new probes
#: per round — a two-level bisection, so each round narrows the bracket 4x
#: instead of 2x at negligible counting cost).
REFINE_SUBDIVISIONS: int = 4

#: A generic coarse base grid (ms) for adaptive sweeps whose callers have no
#: natural probe grid of their own (Table 4 style t-visibility tables, the
#: SLA search, prediction reports).  Geometric spacing covers the paper's
#: production environments — LNKD-SSD resolves within single-digit
#: milliseconds while YMMR needs beyond a second — and adaptive refinement
#: supplies the precision near the crossing that this grid deliberately
#: does not.
DEFAULT_ADAPTIVE_GRID_MS: tuple[float, ...] = (
    0.0, 0.5, 2.0, 8.0, 32.0, 128.0, 512.0, 2048.0, 8192.0,
)


def _first_crossing_index(probabilities: np.ndarray, target: float) -> int | None:
    """Index of the first probe estimate at or above ``target``, or ``None``.

    The one definition of "the crossing" shared by refinement decisions
    (:meth:`_RefinementPlan._bracket`), the reported t-visibility
    (:meth:`ConfigSweepResult._grid_t_visibility`), and the honesty check
    (:meth:`ConfigSweepResult.t_visibility_bracket`) — they must agree on
    which probes bracket the target or the stop gate and the reported
    numbers desynchronise.
    """
    reached = np.nonzero(probabilities >= target)[0]
    if reached.size == 0:
        return None
    return int(reached[0])


def min_trials_for_quantile(quantile: float, tail_samples: int = 100) -> int:
    """Early-stopping floor for a sweep that reports the ``quantile``-quantile.

    The Wilson tolerance only constrains probe-time consistency estimates, so
    a caller that reports tail quantiles (t-visibility at 99.9%, p99.9
    latency) should not let a loose tolerance stop the sweep before the tail
    has ~``tail_samples`` observations: ``ceil(tail_samples / (1 - q))``.
    """
    if not 0.0 < quantile <= 1.0:
        raise ConfigurationError(f"quantile must be in (0, 1], got {quantile}")
    if quantile == 1.0:
        # The exact maximum never converges by tail-count; disable early
        # stopping in practice by requiring an unattainably large floor.
        return np.iinfo(np.int64).max
    return int(ceil(tail_samples / (1.0 - quantile)))


class StreamingHistogram:
    """A fixed-bin streaming histogram with exact extremes.

    Bin edges are frozen from the range of the first batch of values; later
    values outside that range fall into exact underflow/overflow buckets whose
    spans are bounded by the tracked global minimum and maximum.  Quantile
    queries interpolate within a bucket, so ``quantile(0.0)`` and
    ``quantile(1.0)`` return the exact extremes and degenerate (constant)
    data is reproduced exactly.

    With ``log_scale=True`` (and a strictly positive first batch) the bins are
    geometrically spaced, giving constant *relative* resolution — the right
    shape for heavy-tailed latency data whose p50 and p99.9 differ by orders
    of magnitude.  Data that turns out non-positive falls back to linear bins.
    """

    __slots__ = (
        "_bins",
        "_log_scale",
        "_edges",
        "_counts",
        "_underflow",
        "_overflow",
        "_count",
        "_min",
        "_max",
    )

    def __init__(self, bins: int = 2_048, log_scale: bool = False) -> None:
        if bins < 1:
            raise AnalysisError(f"histogram bin count must be >= 1, got {bins}")
        self._bins = bins
        self._log_scale = log_scale
        self._edges: np.ndarray | None = None
        self._counts: np.ndarray | None = None
        self._underflow = 0
        self._overflow = 0
        self._count = 0
        self._min = float("inf")
        self._max = float("-inf")

    @property
    def count(self) -> int:
        """Total number of accumulated values."""
        return self._count

    @property
    def min(self) -> float:
        """Exact minimum of the accumulated values."""
        if self._count == 0:
            raise AnalysisError("histogram is empty")
        return self._min

    @property
    def max(self) -> float:
        """Exact maximum of the accumulated values."""
        if self._count == 0:
            raise AnalysisError("histogram is empty")
        return self._max

    def spawn_empty(self) -> "StreamingHistogram":
        """An empty histogram sharing this histogram's frozen bin layout.

        The clone counts nothing yet but bins incoming values exactly as this
        histogram would, so the two can later :meth:`merge` without error.
        Spawning from an unfrozen histogram returns a plain empty histogram
        with the same configuration.
        """
        clone = StreamingHistogram(self._bins, log_scale=self._log_scale)
        if self._edges is not None:
            # Frozen layouts are immutable, so sharing the edges is safe (and
            # pickling for worker processes copies them anyway).
            clone._edges = self._edges
            clone._counts = np.zeros(self._bins, dtype=np.int64)
        return clone

    def merge(self, other: "StreamingHistogram") -> None:
        """Fold another histogram's state into this one, exactly.

        Merging is pure state addition — bin-wise counts, underflow/overflow,
        totals — plus min/max reconciliation, so it is associative and
        commutative: any merge order over a set of histograms yields identical
        state, and merging per-shard histograms reproduces the single-stream
        histogram that saw all the data (given a shared layout).  Both sides
        must have the same bin count, scale, and — when both are frozen — the
        same bin edges; use :meth:`spawn_empty` to give shards a shared
        layout.  An unfrozen (empty) side adopts the other's layout.
        """
        if other._bins != self._bins or other._log_scale != self._log_scale:
            raise AnalysisError(
                "cannot merge histograms with different configurations: "
                f"bins {self._bins} vs {other._bins}, "
                f"log_scale {self._log_scale} vs {other._log_scale}"
            )
        if other._edges is not None:
            if self._edges is None:
                self._edges = other._edges
                self._counts = np.zeros(self._bins, dtype=np.int64)
            elif not np.array_equal(self._edges, other._edges):
                raise AnalysisError(
                    "cannot merge histograms with mismatched bin layouts; "
                    "spawn shard histograms from one frozen layout "
                    "(StreamingHistogram.spawn_empty)"
                )
            assert self._counts is not None and other._counts is not None
            self._counts += other._counts
        self._underflow += other._underflow
        self._overflow += other._overflow
        self._count += other._count
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)

    def update(self, values: np.ndarray) -> None:
        """Accumulate a batch of values."""
        values = np.asarray(values, dtype=float).ravel()
        if values.size == 0:
            return
        self._min = min(self._min, float(values.min()))
        self._max = max(self._max, float(values.max()))
        if self._edges is None:
            lo, hi = self._min, self._max
            if not hi > lo:
                # Degenerate first batch: give the bins a tiny span; quantile
                # queries short-circuit on min == max anyway.
                hi = lo + max(abs(lo), 1.0) * 1e-9
            # Pad the frozen range well beyond the first batch's extremes so
            # that the (heavier) tail of later batches still lands in binned
            # territory instead of the single coarse overflow bucket.
            if self._log_scale and lo > 0.0:
                self._edges = np.geomspace(lo / 4.0, hi * 64.0, self._bins + 1)
            else:
                span = hi - lo
                self._edges = np.linspace(lo - 0.5 * span, hi + 2.0 * span, self._bins + 1)
            self._counts = np.zeros(self._bins, dtype=np.int64)
        self._underflow += int(np.count_nonzero(values < self._edges[0]))
        self._overflow += int(np.count_nonzero(values > self._edges[-1]))
        self._counts += np.histogram(values, bins=self._edges)[0]
        self._count += int(values.size)

    def _extended_buckets(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """``(lows, highs, counts, cumulative)`` over underflow + bins + overflow.

        The single bucket layout both :meth:`quantile` and :meth:`cdf` walk:
        the exact-extreme underflow/overflow buckets book-end the frozen bins.
        """
        assert self._edges is not None and self._counts is not None
        lows = np.concatenate(([self._min], self._edges[:-1], [self._edges[-1]]))
        highs = np.concatenate(([self._edges[0]], self._edges[1:], [self._max]))
        counts = np.concatenate(([self._underflow], self._counts, [self._overflow]))
        return lows, highs, counts, np.cumsum(counts)

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``q`` in [0, 1]) of the accumulated values."""
        if self._count == 0:
            raise AnalysisError("cannot query quantiles of an empty histogram")
        if not 0.0 <= q <= 1.0:
            raise AnalysisError(f"quantile must be in [0, 1], got {q}")
        if self._min == self._max:
            return self._min
        lows, highs, counts, cumulative = self._extended_buckets()
        target = q * self._count
        index = int(np.searchsorted(cumulative, target, side="left"))
        index = min(index, counts.size - 1)
        below = float(cumulative[index - 1]) if index > 0 else 0.0
        in_bucket = float(counts[index])
        fraction = (target - below) / in_bucket if in_bucket > 0 else 0.0
        low = float(lows[index])
        high = max(float(highs[index]), low)
        if self._log_scale and low > 0.0:
            value = low * (high / low) ** fraction
        else:
            value = low + (high - low) * fraction
        # The padded edges can spill past the observed extremes; the data
        # cannot.
        return min(max(value, self._min), self._max)

    def percentile(self, p: float) -> float:
        """Estimate the latency at percentile ``p`` (``p`` in [0, 100])."""
        if not 0.0 <= p <= 100.0:
            raise AnalysisError(f"percentile must be in [0, 100], got {p}")
        return self.quantile(p / 100.0)

    def cdf(self, value: float) -> float:
        """Estimate P(X <= value) for the accumulated values.

        The inverse of :meth:`quantile`: exact 0/1 outside the observed
        extremes, interpolated within a bucket otherwise.
        """
        if self._count == 0:
            raise AnalysisError("cannot query the CDF of an empty histogram")
        if value < self._min:
            return 0.0
        if value >= self._max:
            return 1.0
        lows, highs, counts, cumulative = self._extended_buckets()
        index = int(np.searchsorted(highs, value, side="right"))
        index = min(index, counts.size - 1)
        below = float(cumulative[index - 1]) if index > 0 else 0.0
        low = max(float(lows[index]), self._min)
        high = min(float(highs[index]), self._max)
        if high > low:
            if self._log_scale and low > 0.0:
                fraction = np.log(value / low) / np.log(high / low)
            else:
                fraction = (value - low) / (high - low)
        else:
            fraction = 1.0
        fraction = min(max(float(fraction), 0.0), 1.0)
        return (below + fraction * float(counts[index])) / self._count


@dataclass(frozen=True)
class ConfigSweepResult:
    """Streaming summary of one configuration's share of a sweep.

    Consistency counts at the probe times are exact; threshold and latency
    distributions are histogram sketches.  When the engine was constructed
    with ``keep_samples=True``, :meth:`as_trial_result` exposes the raw
    per-trial arrays as a :class:`~repro.core.wars.WARSTrialResult`.

    Adaptive sweeps additionally carry *refined* probes: times added at chunk
    boundaries to localise the t-visibility crossing.  A refined probe's
    count covers only the trials accumulated after its activation, so its
    probability estimate is ``refined_counts[i] / refined_trials[i]`` — an
    unbiased estimate over its own observation window.  Curve and
    t-visibility queries interpolate over the union of base and refined
    probes (:meth:`probe_grid`).
    """

    config: ReplicaConfig
    trials: int
    times_ms: tuple[float, ...]
    #: Exact count of trials whose staleness threshold is <= the probe time.
    consistent_counts: tuple[int, ...]
    #: Exact count of trials consistent immediately after commit (t = 0).
    nonpositive_thresholds: int
    confidence: float
    _threshold_histogram: StreamingHistogram = field(repr=False)
    _read_histogram: StreamingHistogram = field(repr=False)
    _write_histogram: StreamingHistogram = field(repr=False)
    _samples: WARSTrialResult | None = field(repr=False, default=None)
    #: Adaptive refinement probes (sorted by time), their exact consistency
    #: counts, and the number of trials each probe observed.
    refined_times_ms: tuple[float, ...] = ()
    refined_counts: tuple[int, ...] = ()
    refined_trials: tuple[int, ...] = ()
    #: The engine's ``probe_resolution_ms`` knob (``None`` when adaptive
    #: refinement was off).  Adaptive t-visibility queries invert the probe
    #: grid even when no refined probes were grown — a base grid that
    #: already meets the resolution is still an exact-count bracket.
    probe_resolution_ms: float | None = None

    @cached_property
    def _union_grid(self) -> tuple[np.ndarray, np.ndarray]:
        """``(times, probabilities)`` over base + refined probes, time-sorted.

        Base probes are normalised by the full trial count, refined probes by
        their own observation counts.  Cached: the result is frozen, and the
        experiment runners query the curve once per probe time per config.
        """
        times = np.asarray(self.times_ms, dtype=float)
        probabilities = np.asarray(self.consistent_counts, dtype=float) / self.trials
        if self.refined_times_ms:
            refined_p = np.asarray(self.refined_counts, dtype=float) / np.asarray(
                self.refined_trials, dtype=float
            )
            times = np.concatenate([times, np.asarray(self.refined_times_ms)])
            probabilities = np.concatenate([probabilities, refined_p])
            order = np.argsort(times, kind="stable")
            times, probabilities = times[order], probabilities[order]
        return times, probabilities

    def probe_grid(self) -> list[tuple[float, float]]:
        """``(t, P(consistent at t))`` at every probe, base and refined.

        The union grid adaptive queries interpolate over; without adaptive
        refinement this is simply the base probe grid.

        Returns
        -------
        list of ``(t_ms, probability)`` pairs sorted by time.
        """
        times, probabilities = self._union_grid
        return [(float(t), float(p)) for t, p in zip(times, probabilities)]

    def consistency_probability(self, t_ms: float) -> float:
        """P(consistent read at ``t_ms`` after commit): exact at probe times.

        Probe times use the exact streaming counts (refined probes are
        normalised by their own observation counts); times between probes are
        linearly interpolated over the union grid.  Times beyond the last
        probe raise — unlike the exact-for-any-t
        :meth:`WARSTrialResult.consistency_probability`, a streaming summary
        has no information past its probe grid, and silently clamping to the
        last probe's value would understate the curve.
        """
        if t_ms < 0:
            raise ConfigurationError(f"time since commit must be non-negative, got {t_ms}")
        if t_ms == 0.0:
            return self.probability_never_stale()
        times, probabilities = self._union_grid
        if t_ms > times[-1]:
            raise ConfigurationError(
                f"t={t_ms} lies beyond configuration {self.config.label()}'s "
                f"probe grid (max probe {times[-1]} ms); widen the engine's "
                "times_ms to cover it (adaptive probe_resolution_ms "
                "refinement only subdivides within the grid span, so it "
                "cannot reach past the last base probe)"
            )
        index = np.searchsorted(times, t_ms)
        if index < times.size and times[index] == t_ms:
            return float(probabilities[index])
        return float(np.interp(t_ms, times, probabilities))

    def consistency_curve(self, times_ms: Sequence[float] | None = None) -> list[tuple[float, float]]:
        """``(t, P(consistent at t))`` pairs (defaults to the full probe grid).

        With no argument the curve covers every probe, refined ones included
        (:meth:`probe_grid`) — on an adaptive sweep that is where the detail
        near the crossing lives.  Pass explicit times to sample elsewhere.
        """
        if times_ms is None:
            return self.probe_grid()
        return [(float(t), self.consistency_probability(float(t))) for t in times_ms]

    def probability_never_stale(self) -> float:
        """Exact fraction of trials consistent even at ``t = 0``."""
        return self.nonpositive_thresholds / self.trials

    def estimate_at(self, t_ms: float, confidence: float | None = None) -> ProbabilityEstimate:
        """Wilson interval for the consistency probability at a probe time.

        Works for base and refined probes alike; a refined probe's interval
        uses its own observation count as the denominator.
        """
        times = np.asarray(self.times_ms)
        index = np.searchsorted(times, t_ms)
        if index < times.size and times[index] == t_ms:
            return wilson_interval(
                self.consistent_counts[index],
                self.trials,
                confidence if confidence is not None else self.confidence,
            )
        if t_ms in self.refined_times_ms:
            refined_index = self.refined_times_ms.index(t_ms)
            return wilson_interval(
                self.refined_counts[refined_index],
                self.refined_trials[refined_index],
                confidence if confidence is not None else self.confidence,
            )
        raise ConfigurationError(
            f"t={t_ms} is not one of this sweep's probe times {self.times_ms}"
            + (f" or refined probes {self.refined_times_ms}" if self.refined_times_ms else "")
        )

    def max_margin(self, confidence: float | None = None) -> float:
        """Largest Wilson half-width across the *base* probe times.

        Refined probes are deliberately excluded: they exist to localise the
        crossing, carry their own (smaller) observation counts, and — once
        bisection moves past them — no longer inform any reported number.
        The engine's adaptive early-stopping gate separately bounds the
        margins of the probes that *do* matter, the bracket endpoints.
        """
        return max(
            self.estimate_at(t, confidence).margin for t in self.times_ms
        )

    def t_visibility(self, target_probability: float) -> float:
        """Smallest ``t`` (ms) reaching the target probability of consistency.

        Strict quorums (whose thresholds are all non-positive) report exactly
        0.0 via the exact non-positive count.  Adaptive sweeps invert the
        union probe grid — interpolating between the exact counts bracketing
        the crossing, so the answer is resolved to ``probe_resolution_ms`` —
        and fall back to the threshold-histogram sketch only when the
        crossing lies beyond the grid.  Non-adaptive streaming sweeps invert
        the sketch; ``keep_samples=True`` sweeps use the exact per-trial
        order statistics.
        """
        if not 0.0 < target_probability <= 1.0:
            raise ConfigurationError(
                f"target probability must be in (0, 1], got {target_probability}"
            )
        needed = ceil(target_probability * self.trials)
        if needed <= self.nonpositive_thresholds:
            return 0.0
        if self._samples is not None:
            return self._samples.t_visibility(target_probability)
        if self.probe_resolution_ms is not None or self.refined_times_ms:
            crossing = self._grid_t_visibility(target_probability)
            if crossing is not None:
                return crossing
        return float(max(self._threshold_histogram.quantile(target_probability), 0.0))

    def t_visibility_bracket(self, target_probability: float) -> tuple[float, float] | None:
        """The union-grid probe times bracketing the target crossing.

        The honesty check for adaptive sweeps: a fixed trial budget can end
        the run before refinement narrows every bracket to
        ``probe_resolution_ms``, and a crossing beyond the base grid span is
        never bracketed at all — in both cases :meth:`t_visibility` still
        answers (interpolating the wide bracket, or falling back to the
        threshold-histogram sketch) without any indication.  Compare this
        bracket's width against the resolution you asked for.

        Returns
        -------
        ``(t_low, t_high)`` — the last probe below the target and the first
        at or above it; ``(0.0, 0.0)`` when the target is met exactly at
        commit; ``None`` when the curve never reaches the target on the
        grid (the crossing lies beyond the grid span).

        Example
        -------
        >>> # summary = SweepEngine(..., probe_resolution_ms=1.0, ...).run(...)
        >>> # bracket = summary.t_visibility_bracket(0.999)
        >>> # resolved = bracket is not None and bracket[1] - bracket[0] <= 1.0
        """
        if not 0.0 < target_probability <= 1.0:
            raise ConfigurationError(
                f"target probability must be in (0, 1], got {target_probability}"
            )
        if ceil(target_probability * self.trials) <= self.nonpositive_thresholds:
            return (0.0, 0.0)
        times, probabilities = self._union_grid
        index = _first_crossing_index(probabilities, target_probability)
        if index is None:
            return None
        if index == 0:
            return (float(times[0]), float(times[0]))
        return (float(times[index - 1]), float(times[index]))

    def _grid_t_visibility(self, target_probability: float) -> float | None:
        """Invert the union probe grid, or ``None`` if it never reaches the target."""
        times, probabilities = self._union_grid
        index = _first_crossing_index(probabilities, target_probability)
        if index is None:
            return None
        if index == 0:
            return float(times[0])
        t_low, t_high = float(times[index - 1]), float(times[index])
        p_low, p_high = float(probabilities[index - 1]), float(probabilities[index])
        if p_high <= p_low:
            return t_high
        fraction = (target_probability - p_low) / (p_high - p_low)
        return t_low + fraction * (t_high - t_low)

    def read_latency_percentile(self, percentile: float) -> float:
        """Read operation latency (ms) at the given percentile.

        Sketch-based when streaming; exact (``numpy.percentile`` over the
        retained trials) when the engine ran with ``keep_samples=True``.
        """
        if self._samples is not None:
            return float(np.percentile(self._samples.read_latencies_ms, percentile))
        return self._read_histogram.percentile(percentile)

    def write_latency_percentile(self, percentile: float) -> float:
        """Write (commit) latency (ms) at the given percentile.

        Sketch-based when streaming; exact when the engine ran with
        ``keep_samples=True``.
        """
        if self._samples is not None:
            return float(np.percentile(self._samples.commit_latencies_ms, percentile))
        return self._write_histogram.percentile(percentile)

    def read_latency_cdf(self, latency_ms: float) -> float:
        """P(read latency <= ``latency_ms``): sketch-based when streaming."""
        if self._samples is not None:
            latencies = self._samples.read_latencies_ms
            return float(np.count_nonzero(latencies <= latency_ms) / latencies.size)
        return self._read_histogram.cdf(latency_ms)

    def write_latency_cdf(self, latency_ms: float) -> float:
        """P(write latency <= ``latency_ms``): sketch-based when streaming."""
        if self._samples is not None:
            latencies = self._samples.commit_latencies_ms
            return float(np.count_nonzero(latencies <= latency_ms) / latencies.size)
        return self._write_histogram.cdf(latency_ms)

    def as_trial_result(self) -> WARSTrialResult:
        """Raw per-trial arrays (requires ``keep_samples=True`` on the engine)."""
        if self._samples is None:
            raise AnalysisError(
                "raw samples were not retained; construct the SweepEngine with "
                "keep_samples=True"
            )
        return self._samples


@dataclass(frozen=True)
class SweepResult:
    """The outcome of one :meth:`SweepEngine.run` call."""

    results: tuple[ConfigSweepResult, ...]
    trials_requested: int
    trials_run: int
    chunk_size: int
    tolerance: float | None
    confidence: float
    #: The engine's ``workers`` knob (informational; results never depend on it).
    workers: int = 1
    #: Adaptive refinement knobs the sweep ran with (``None``/empty when off).
    probe_resolution_ms: float | None = None
    target_probabilities: tuple[float, ...] = ()
    #: The sampling-reduction kernel backend the sweep ran on (after
    #: auto-detection and fallback), e.g. ``"numpy"`` or ``"numba"``.
    kernel_backend: str = "numpy"

    @property
    def stopped_early(self) -> bool:
        """True when early stopping ended the sweep before the trial budget."""
        return self.trials_run < self.trials_requested

    @property
    def converged(self) -> bool:
        """True when every configuration meets the tolerance at every probe
        that informs a reported number.

        Base probes always count.  On adaptive sweeps the bracket endpoints
        around each target crossing count too, with their own observation
        totals — a budget-exhausted run whose freshly activated endpoint is
        still statistically loose must not claim convergence, mirroring the
        engine's early-stop gate.
        """
        if self.tolerance is None:
            return False
        if self.max_margin() > self.tolerance:
            return False
        if self.probe_resolution_ms is not None:
            for result in self.results:
                for target in self.target_probabilities:
                    bracket = result.t_visibility_bracket(target)
                    if bracket is None or bracket[0] == bracket[1]:
                        continue
                    for endpoint in bracket:
                        if result.estimate_at(endpoint).margin > self.tolerance:
                            return False
        return True

    def max_margin(self) -> float:
        """Largest Wilson half-width across all configurations and probe times."""
        return max(result.max_margin() for result in self.results)

    def for_config(self, config: ReplicaConfig) -> ConfigSweepResult:
        """Look up the summary for one configuration."""
        for result in self.results:
            if result.config == config:
                return result
        raise ConfigurationError(f"configuration {config.label()} was not part of this sweep")

    def __iter__(self) -> Iterator[ConfigSweepResult]:
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)


class _ConfigAccumulator:
    """Streaming per-configuration accumulation across chunks.

    All state is mergeable: :meth:`merge` folds another accumulator's counts
    and sketches into this one exactly (integer addition plus histogram
    merges), so shard-parallel accumulation followed by in-order merging is
    bit-for-bit identical to a single sequential accumulation over the same
    trials.  Shards must share frozen histogram layouts — spawn them from a
    primed accumulator via :meth:`spawn_empty`.

    Adaptive refinement adds *grid-versioned* probes via :meth:`add_probes`:
    each refined probe tracks ``[consistent_count, trials_observed]`` from
    the moment it was added, and merging adds both components key-wise, so a
    probe's estimate is always an exact count over the trials that actually
    observed it — regardless of which process accumulated them.
    """

    def __init__(
        self,
        config: ReplicaConfig,
        times_ms: np.ndarray,
        histogram_bins: int,
        keep_samples: bool,
    ) -> None:
        self.config = config
        self.times_ms = times_ms
        self.histogram_bins = histogram_bins
        self.trials = 0
        self.consistent_counts = np.zeros(times_ms.size, dtype=np.int64)
        self.nonpositive_thresholds = 0
        # Thresholds can be negative (strict quorums), so they bin linearly;
        # operation latencies are positive and heavy-tailed, so they get
        # constant relative resolution from log-spaced bins.
        self.threshold_histogram = StreamingHistogram(histogram_bins)
        self.read_histogram = StreamingHistogram(histogram_bins, log_scale=True)
        self.write_histogram = StreamingHistogram(histogram_bins, log_scale=True)
        #: time -> [consistent_count, trials_observed], insertion-ordered.
        self.refined_probes: dict[float, list[int]] = {}
        self._refined_times = np.empty(0, dtype=float)
        self._kept: list[WARSTrialResult] | None = [] if keep_samples else None

    def spawn_empty(self) -> "_ConfigAccumulator":
        """An empty accumulator sharing this one's frozen histogram layouts.

        Worker shards accumulate into spawned clones so their sketches bin
        values identically to the coordinator's and merge without error.
        Spawned accumulators never retain raw samples (sharded runs are
        streaming-only).
        """
        clone = _ConfigAccumulator(
            self.config, self.times_ms, self.histogram_bins, keep_samples=False
        )
        clone.threshold_histogram = self.threshold_histogram.spawn_empty()
        clone.read_histogram = self.read_histogram.spawn_empty()
        clone.write_histogram = self.write_histogram.spawn_empty()
        # Refined probes are deliberately not copied: worker tasks carry the
        # probe set active for their chunk and add it via add_probes.
        return clone

    def add_probes(self, times: Sequence[float]) -> None:
        """Activate refined probes: exact counting starts with the next update.

        Times already probed (base grid or previously added) are ignored, so
        activation is idempotent.
        """
        base = set(float(t) for t in self.times_ms)
        added = False
        for time in times:
            time = float(time)
            if time in base or time in self.refined_probes:
                continue
            self.refined_probes[time] = [0, 0]
            added = True
        if added:
            self._refined_times = np.asarray(list(self.refined_probes), dtype=float)

    def probe_table(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(times, counts, observed)`` over base + refined probes, time-sorted.

        The coordinator's view for refinement decisions: base probes carry
        the full trial count, refined probes their own observation counts.
        Refined probes that have not yet observed a chunk are excluded (their
        estimates would be 0/0).
        """
        times = [float(t) for t in self.times_ms]
        counts = [int(c) for c in self.consistent_counts]
        observed = [self.trials] * len(times)
        for time, (count, seen) in self.refined_probes.items():
            if seen > 0:
                times.append(time)
                counts.append(count)
                observed.append(seen)
        order = np.argsort(times, kind="stable")
        return (
            np.asarray(times, dtype=float)[order],
            np.asarray(counts, dtype=np.int64)[order],
            np.asarray(observed, dtype=np.int64)[order],
        )

    def merge(self, other: "_ConfigAccumulator") -> None:
        """Fold another accumulator's state into this one, exactly.

        Associative and commutative (integer additions and exact histogram
        merges), so shard merge order cannot change any count; the engine
        still merges in block order so that retained-sample concatenation —
        when a caller merges keep-samples accumulators — preserves trial
        order.
        """
        if other.config != self.config:
            raise AnalysisError(
                f"cannot merge accumulators for different configurations: "
                f"{self.config.label()} vs {other.config.label()}"
            )
        if not np.array_equal(other.times_ms, self.times_ms):
            raise AnalysisError(
                "cannot merge accumulators with different probe-time grids"
            )
        self.trials += other.trials
        self.consistent_counts += other.consistent_counts
        self.nonpositive_thresholds += other.nonpositive_thresholds
        self.threshold_histogram.merge(other.threshold_histogram)
        self.read_histogram.merge(other.read_histogram)
        self.write_histogram.merge(other.write_histogram)
        # Grid-versioned refined probes merge key-wise: counts and observation
        # totals add, and a probe unknown to one side is adopted with the other
        # side's state — addition over (count, observed) pairs is associative
        # and commutative, keeping the merge a monoid.
        if other.refined_probes:
            for time, (count, seen) in other.refined_probes.items():
                entry = self.refined_probes.setdefault(time, [0, 0])
                entry[0] += count
                entry[1] += seen
            self._refined_times = np.asarray(list(self.refined_probes), dtype=float)
        if self._kept is not None and other._kept is not None:
            self._kept.extend(other._kept)
        elif (self._kept is None) != (other._kept is None) and other.trials:
            # Mixed retention would silently drop one side's raw samples.
            raise AnalysisError(
                "cannot merge accumulators with mismatched sample retention"
            )

    def update(self, result: WARSTrialResult) -> None:
        thresholds = result.staleness_thresholds_ms
        self.trials += thresholds.size
        if self.times_ms.size:
            self.consistent_counts += np.count_nonzero(
                thresholds[:, None] <= self.times_ms[None, :], axis=0
            )
        if self.refined_probes:
            refined_counts = np.count_nonzero(
                thresholds[:, None] <= self._refined_times[None, :], axis=0
            )
            for entry, count in zip(self.refined_probes.values(), refined_counts):
                entry[0] += int(count)
                entry[1] += thresholds.size
        self.nonpositive_thresholds += int(np.count_nonzero(thresholds <= 0.0))
        self.threshold_histogram.update(thresholds)
        self.read_histogram.update(result.read_latencies_ms)
        self.write_histogram.update(result.commit_latencies_ms)
        if self._kept is not None:
            self._kept.append(result)

    def max_margin(self, confidence: float) -> float:
        # The probe grid always contains t=0 (SweepEngine injects it), so the
        # counts array is never empty.
        return max(
            wilson_interval(int(count), self.trials, confidence).margin
            for count in self.consistent_counts
        )

    def kept_results(self) -> list[WARSTrialResult]:
        return self._kept or []

    def finalize(
        self,
        confidence: float,
        shared_arrivals: np.ndarray | None = None,
        probe_resolution_ms: float | None = None,
    ) -> ConfigSweepResult:
        samples: WARSTrialResult | None = None
        if self._kept is not None:
            samples = WARSTrialResult(
                config=self.config,
                commit_latencies_ms=np.concatenate(
                    [kept.commit_latencies_ms for kept in self._kept]
                ),
                read_latencies_ms=np.concatenate(
                    [kept.read_latencies_ms for kept in self._kept]
                ),
                staleness_thresholds_ms=np.concatenate(
                    [kept.staleness_thresholds_ms for kept in self._kept]
                ),
                write_arrivals_ms=shared_arrivals,
            )
        observed_refined = sorted(
            (time, entry[0], entry[1])
            for time, entry in self.refined_probes.items()
            if entry[1] > 0
        )
        return ConfigSweepResult(
            config=self.config,
            trials=self.trials,
            times_ms=tuple(float(t) for t in self.times_ms),
            consistent_counts=tuple(int(c) for c in self.consistent_counts),
            nonpositive_thresholds=self.nonpositive_thresholds,
            confidence=confidence,
            _threshold_histogram=self.threshold_histogram,
            _read_histogram=self.read_histogram,
            _write_histogram=self.write_histogram,
            _samples=samples,
            refined_times_ms=tuple(time for time, _, _ in observed_refined),
            refined_counts=tuple(count for _, count, _ in observed_refined),
            refined_trials=tuple(seen for _, _, seen in observed_refined),
            probe_resolution_ms=probe_resolution_ms,
        )


class _RefinementPlan:
    """Coordinator-side adaptive probe-grid state (module docstring, "Adaptive
    probe-grid refinement").

    The plan owns everything about refinement that is *not* a per-trial
    count: which probe times have been decided, and at which chunk each
    batch of probes activates.  Decisions are made exclusively from merged
    accumulator state at chunk boundaries, so for a given (seed, chunk size)
    the whole probe schedule is deterministic and identical for any worker
    count.
    """

    __slots__ = ("targets", "resolution_ms", "_decided", "_pending")

    def __init__(
        self,
        targets: tuple[float, ...],
        resolution_ms: float,
        base_times: np.ndarray,
    ) -> None:
        self.targets = targets
        self.resolution_ms = resolution_ms
        self._decided: set[float] = {float(t) for t in base_times}
        #: ``(activation_chunk, times)`` batches, in decision order.
        self._pending: list[tuple[int, tuple[float, ...]]] = []

    def probes_for_chunk(self, chunk_index: int) -> tuple[float, ...]:
        """All refined times active for ``chunk_index`` (worker task payload)."""
        return tuple(
            time
            for activation, times in self._pending
            if activation <= chunk_index
            for time in times
        )

    def activate_due(self, chunk_index: int, accumulators: Sequence[_ConfigAccumulator]) -> None:
        """Add every probe due by ``chunk_index`` to the coordinator state.

        Idempotent (``add_probes`` skips known times), so it is safe to call
        at every chunk boundary.
        """
        due = self.probes_for_chunk(chunk_index)
        if due:
            for accumulator in accumulators:
                accumulator.add_probes(due)

    @staticmethod
    def probe_tables(
        accumulators: Sequence[_ConfigAccumulator],
    ) -> list[tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """One :meth:`_ConfigAccumulator.probe_table` per accumulator.

        Built once per chunk boundary and shared by the stop gate
        (:meth:`complete`, :meth:`bracket_margin`) and :meth:`decide` — the
        tables do not depend on the target, so rebuilding them per bracket
        query would be pure repeated sorting.
        """
        return [accumulator.probe_table() for accumulator in accumulators]

    def _bracket(
        self, table: tuple[np.ndarray, np.ndarray, np.ndarray], target: float
    ) -> tuple[float, float, int, int, int, int] | None:
        """``(t_lo, t_hi, count_lo, n_lo, count_hi, n_hi)`` around the crossing.

        ``None`` when there is nothing to refine: the curve reaches the
        target at t = 0 (the crossing is exactly 0) or never reaches it on
        the observed grid (the crossing lies beyond the grid span — no
        bracket to bisect).
        """
        times, counts, observed = table
        probabilities = counts / observed
        index = _first_crossing_index(probabilities, target)
        if index is None or index == 0:
            return None
        return (
            float(times[index - 1]),
            float(times[index]),
            int(counts[index - 1]),
            int(observed[index - 1]),
            int(counts[index]),
            int(observed[index]),
        )

    def decide(
        self,
        tables: Sequence[tuple[np.ndarray, np.ndarray, np.ndarray]],
        boundary_chunk: int,
    ) -> None:
        """Propose subdivision probes for every too-wide bracket.

        Called after the early-stopping check at chunk boundary
        ``boundary_chunk``; new probes activate at chunk
        ``boundary_chunk + 1 + REFINE_ACTIVATION_LAG``.
        """
        proposals: list[float] = []
        for table in tables:
            for target in self.targets:
                bracket = self._bracket(table, target)
                if bracket is None:
                    continue
                t_low, t_high = bracket[0], bracket[1]
                if t_high - t_low <= self.resolution_ms:
                    continue
                step = (t_high - t_low) / REFINE_SUBDIVISIONS
                for k in range(1, REFINE_SUBDIVISIONS):
                    time = t_low + k * step
                    if time not in self._decided:
                        self._decided.add(time)
                        proposals.append(time)
        if proposals:
            self._pending.append(
                (boundary_chunk + 1 + REFINE_ACTIVATION_LAG, tuple(proposals))
            )

    def complete(
        self, tables: Sequence[tuple[np.ndarray, np.ndarray, np.ndarray]]
    ) -> bool:
        """True once every (configuration, target) bracket is at resolution."""
        for table in tables:
            for target in self.targets:
                bracket = self._bracket(table, target)
                if bracket is not None and bracket[1] - bracket[0] > self.resolution_ms:
                    return False
        return True

    def bracket_margin(
        self,
        tables: Sequence[tuple[np.ndarray, np.ndarray, np.ndarray]],
        confidence: float,
    ) -> float:
        """Worst Wilson half-width over all bracket endpoints.

        The probes the reported crossings rest on; the adaptive early-stop
        gate requires this to meet the tolerance alongside the base grid.
        """
        worst = 0.0
        for table in tables:
            for target in self.targets:
                bracket = self._bracket(table, target)
                if bracket is None:
                    continue
                _, _, count_low, n_low, count_high, n_high = bracket
                worst = max(
                    worst,
                    wilson_interval(count_low, n_low, confidence).margin,
                    wilson_interval(count_high, n_high, confidence).margin,
                )
        return worst


@dataclass(frozen=True)
class _WorkerSpec:
    """Everything a worker process needs to sample and accumulate any chunk.

    Shipped once per worker via the pool initializer.  ``templates`` are
    empty accumulators spawned from the coordinator's frozen histogram
    layouts, so every shard bins values identically and partials merge
    exactly.  The seed streams are re-derived in the worker from the root
    entropy, keeping the task payload down to a ``(start, count)`` pair.
    """

    distributions: WARSDistributions
    configs: tuple[ReplicaConfig, ...]
    #: ``(replication factor, indices into configs)`` pairs in group order.
    groups: tuple[tuple[int, tuple[int, ...]], ...]
    templates: tuple[_ConfigAccumulator, ...]
    entropy: object
    total_blocks: int
    #: Resolved kernel-backend *name* (never the instance: JIT state is
    #: per-process, so each worker re-resolves by name after the pool
    #: initializer pins its thread pools).
    kernel_backend: str = "numpy"
    #: The pool's worker count, for per-process thread pinning.
    workers: int = 1


#: Per-process worker state: (spec, per-replication-factor block seeds,
#: resolved kernel backend).
_WORKER_STATE: tuple[_WorkerSpec, dict, KernelBackend] | None = None


def _init_worker(spec: _WorkerSpec) -> None:
    """Pool initializer: pin thread pools, cache the spec, re-derive seeds.

    Thread pinning runs first — before the kernel backend is resolved — so a
    JIT backend's parallel runtime starts up already capped at this worker's
    fair core share and process-level sharding composes with kernel-level
    parallelism instead of oversubscribing the machine.
    """
    global _WORKER_STATE
    pin_worker_threads(spec.workers)
    block_seeds = {
        n: np.random.SeedSequence(
            entropy=spec.entropy, spawn_key=(n,)
        ).spawn(spec.total_blocks)
        for n, _ in spec.groups
    }
    _WORKER_STATE = (spec, block_seeds, resolve_backend(spec.kernel_backend))


def _worker_run_chunk(task: tuple[int, int, tuple[float, ...]]) -> list[_ConfigAccumulator]:
    """Sample one chunk's blocks and return per-configuration partials.

    ``task`` is ``(start, count, extra_probes)``: the adaptive refined probes
    active for this chunk ride along in the payload, so the partial's
    grid-versioned counts cover exactly the probes the serial loop would have
    counted over the same trials.
    """
    assert _WORKER_STATE is not None, "worker task ran before the pool initializer"
    spec, block_seeds, kernel = _WORKER_STATE
    start, count, extra_probes = task
    accumulators = [template.spawn_empty() for template in spec.templates]
    if extra_probes:
        for accumulator in accumulators:
            accumulator.add_probes(extra_probes)
    _accumulate_seeded_span(
        spec.distributions,
        spec.configs,
        spec.groups,
        block_seeds,
        accumulators,
        start,
        count,
        kernel=kernel,
    )
    return accumulators


def _accumulate_seeded_span(
    distributions: WARSDistributions,
    configs: tuple[ReplicaConfig, ...],
    groups: tuple[tuple[int, tuple[int, ...]], ...],
    block_seeds: Mapping[int, list],
    accumulators: Sequence[_ConfigAccumulator],
    start: int,
    count: int,
    kernel: KernelBackend | None = None,
) -> None:
    """Accumulate the seed-mode sampling blocks covering ``[start, start + count)``.

    ``start`` must be block-aligned (chunk sizes are rounded to multiples of
    :data:`SAMPLE_BLOCK`).  Shared by the serial loop, the coordinator's
    first chunk, and the worker processes, so every execution mode samples
    bit-for-bit identical trials for a given span.  ``kernel`` selects the
    sampling-reduction backend; sampling streams are backend-independent.
    """
    for n, config_indices in groups:
        offset = 0
        while offset < count:
            begin = start + offset
            rows = min(SAMPLE_BLOCK, count - offset)
            generator = np.random.default_rng(block_seeds[n][begin // SAMPLE_BLOCK])
            batch = sample_wars_batch(
                distributions, rows, n, generator, kernel_backend=kernel
            )
            for index in config_indices:
                accumulators[index].update(batch.reduce(configs[index]))
            offset += rows


class SweepEngine:
    """Evaluate many (N, R, W) configurations against shared WARS samples.

    Parameters
    ----------
    distributions:
        The latency environment shared by every configuration in the sweep.
    configs:
        The configurations to evaluate.  Configurations may mix replication
        factors; each distinct ``N`` gets its own shared draw per chunk (the
        delay matrices have ``N`` columns, so they cannot be shared across
        replication factors).
    times_ms:
        Probe times (ms since commit) at which exact consistency counts — and
        the early-stopping Wilson intervals — are maintained.  ``0.0`` is
        always included.  With adaptive refinement this is the *base* grid:
        deliberately coarse, refined around the t-visibility crossings.  An
        adaptive sweep given no base grid beyond ``0.0`` falls back to
        :data:`DEFAULT_ADAPTIVE_GRID_MS` (a crossing outside the grid span
        cannot be bracketed).
    chunk_size:
        Trials sampled per accumulation step; rounded up to a multiple of
        :data:`SAMPLE_BLOCK`.  Bounds peak memory at
        ``O(chunk_size * max(N))``, sets the early-stopping (and adaptive
        refinement) cadence, and is the unit of work farmed to worker
        processes.  ``None`` selects :data:`DEFAULT_CHUNK_SIZE`, or the
        smaller :data:`DEFAULT_ADAPTIVE_CHUNK_SIZE` when adaptive refinement
        is on (refinement needs several chunk boundaries to converge).
    tolerance:
        Optional Wilson half-width target; when every configuration's interval
        at every probe time is at least this tight, the sweep stops early.
        The tolerance governs the probe-time consistency estimates only —
        callers that report tail quantiles (t-visibility, p99.9 latency)
        should combine it with a ``min_trials`` floor sized for the tail.
    min_trials:
        Early stopping never triggers before this many trials, regardless of
        the tolerance.  Callers reporting a ``q``-quantile should set it to
        roughly ``100 / (1 - q)`` so the quantile rests on at least ~100 tail
        samples.
    confidence:
        Confidence level for the Wilson intervals (default 95%).
    histogram_bins:
        Resolution of the streaming threshold/latency histograms.
    keep_samples:
        Retain the raw per-trial arrays (memory O(trials * N)); required for
        :meth:`ConfigSweepResult.as_trial_result`.  Forces serial execution.
    workers:
        Shard seed-mode chunks across this many worker processes (see the
        module docstring's merge contract).  Results are bit-for-bit
        identical to ``workers=1`` for the same seed.  Runs that cannot
        shard — sequential-generator mode, ``keep_samples=True``, or sweeps
        no larger than one chunk — silently execute serially.
    target_probability:
        The consistency level(s) whose t-visibility crossing adaptive
        refinement localises (a single probability or a sequence, e.g.
        ``(0.99, 0.999)``).  Required when ``probe_resolution_ms`` is set;
        ignored otherwise.
    probe_resolution_ms:
        Enables adaptive probe-grid refinement (module docstring): at chunk
        boundaries the coordinator subdivides the bracket around each
        (configuration, target) crossing until it is at most this wide.
        Refinement decisions are made on merged partials only, so adaptive
        results remain bit-for-bit identical for any ``workers`` count (for
        a fixed seed and chunk size).  The resolution is a *goal*, not a
        guarantee: a fixed trial budget can end the run mid-refinement (the
        early-stopping gate, when a ``tolerance`` is set, does wait for it),
        and a crossing beyond the base grid span is never bracketed — check
        :meth:`ConfigSweepResult.t_visibility_bracket` for what was achieved.
    kernel_backend:
        Sampling-reduction backend from :mod:`repro.kernels`: ``None`` or
        ``"numpy"`` for the bit-for-bit reference, ``"numba"`` for the fused
        ``prange``-parallel JIT kernel (falls back to ``numpy`` with a
        warning when numba is missing), ``"auto"`` for the fastest available.
        Sampling streams are backend-independent; the JIT backend is
        validated statistically against the reference, so seeded results may
        differ from ``numpy`` only in sort tie-breaking (measure-zero under
        continuous latency distributions).  Worker processes re-resolve the
        backend by name after pinning their thread pools, so kernel-level
        and process-level parallelism compose.  Note: once a JIT kernel has
        executed in the process, sharded runs use *spawn* worker pools
        (numba's threading layers are not fork-safe), so scripts combining
        ``kernel_backend="numba"``/``"auto"`` with ``workers > 1`` need the
        standard ``if __name__ == "__main__":`` guard even on Linux.
    """

    def __init__(
        self,
        distributions: WARSDistributions,
        configs: Sequence[ReplicaConfig],
        *,
        times_ms: Sequence[float] = (),
        chunk_size: int | None = None,
        tolerance: float | None = None,
        min_trials: int = 1,
        confidence: float = 0.95,
        histogram_bins: int = 4_096,
        keep_samples: bool = False,
        workers: int = 1,
        target_probability: float | Sequence[float] | None = None,
        probe_resolution_ms: float | None = None,
        kernel_backend: str | KernelBackend | None = None,
    ) -> None:
        self._configs = tuple(configs)
        if not self._configs:
            raise ConfigurationError("a sweep requires at least one configuration")
        if target_probability is None:
            targets: tuple[float, ...] = ()
        elif isinstance(target_probability, (int, float)):
            targets = (float(target_probability),)
        else:
            targets = tuple(sorted({float(t) for t in target_probability}))
        for target in targets:
            if not 0.0 < target <= 1.0:
                raise ConfigurationError(
                    f"target probability must be in (0, 1], got {target}"
                )
        if probe_resolution_ms is not None:
            if not probe_resolution_ms > 0.0:
                raise ConfigurationError(
                    f"probe_resolution_ms must be positive, got {probe_resolution_ms}"
                )
            if not targets:
                raise ConfigurationError(
                    "adaptive refinement (probe_resolution_ms) requires at least "
                    "one target_probability to localise"
                )
        if chunk_size is None:
            chunk_size = (
                DEFAULT_ADAPTIVE_CHUNK_SIZE
                if probe_resolution_ms is not None
                else DEFAULT_CHUNK_SIZE
            )
        if chunk_size < 1:
            raise ConfigurationError(f"chunk size must be >= 1, got {chunk_size}")
        if min_trials < 1:
            raise ConfigurationError(f"min_trials must be >= 1, got {min_trials}")
        if tolerance is not None and not 0.0 < tolerance < 1.0:
            raise ConfigurationError(
                f"tolerance must be a probability half-width in (0, 1), got {tolerance}"
            )
        if not 0.0 < confidence < 1.0:
            raise ConfigurationError(f"confidence must be in (0, 1), got {confidence}")
        if workers < 1:
            raise ConfigurationError(f"worker count must be >= 1, got {workers}")
        times = np.unique(np.asarray([0.0, *times_ms], dtype=float))
        if times.size and times[0] < 0.0:
            raise ConfigurationError("probe times since commit must be non-negative")
        if probe_resolution_ms is not None and times.size <= 1:
            # An adaptive sweep with no base grid beyond t=0 could never
            # bracket a crossing; fall back to the generic coarse grid so
            # callers without a natural grid of their own just work.
            times = np.unique(np.asarray(DEFAULT_ADAPTIVE_GRID_MS, dtype=float))
        self._distributions = distributions
        self._times_ms = times
        self._chunk_size = ceil(chunk_size / SAMPLE_BLOCK) * SAMPLE_BLOCK
        self._targets = targets
        self._probe_resolution_ms = probe_resolution_ms
        self._tolerance = tolerance
        self._min_trials = min_trials
        self._confidence = confidence
        self._histogram_bins = histogram_bins
        self._keep_samples = keep_samples
        self._workers = workers
        # Resolved once at construction: validates the name, performs the
        # auto-detection / missing-dependency fallback (and its one warning)
        # up front, and gives the serial loop a ready instance.  Workers
        # receive only the resolved *name* and re-resolve after thread
        # pinning.
        self._kernel = resolve_backend(kernel_backend)
        # Group configuration indices by replication factor, preserving the
        # first-seen group order (which fixes the RNG consumption order).
        groups: dict[int, list[int]] = {}
        for index, config in enumerate(self._configs):
            groups.setdefault(config.n, []).append(index)
        self._groups: tuple[tuple[int, tuple[int, ...]], ...] = tuple(
            (n, tuple(indices)) for n, indices in groups.items()
        )

    @property
    def configs(self) -> tuple[ReplicaConfig, ...]:
        """The configurations this engine sweeps, in input order."""
        return self._configs

    def run(
        self, trials: int, rng: np.random.Generator | int | None = None
    ) -> SweepResult:
        """Run up to ``trials`` shared-sample trials and summarise every config."""
        if trials < 1:
            raise ConfigurationError(f"trial count must be >= 1, got {trials}")

        accumulators = [
            _ConfigAccumulator(
                config, self._times_ms, self._histogram_bins, self._keep_samples
            )
            for config in self._configs
        ]

        sequential = rng if isinstance(rng, np.random.Generator) else None
        block_seeds: Mapping[int, list] = {}
        root_entropy: object = None
        total_blocks = 0
        if sequential is None:
            root = np.random.SeedSequence(rng)
            root_entropy = root.entropy
            total_blocks = ceil(trials / SAMPLE_BLOCK)
            # Group streams are keyed by the replication factor itself (via
            # spawn_key), not by group order, so a configuration's samples for
            # a given seed are identical whether it is swept alone or
            # alongside configurations with other replication factors.
            block_seeds = {
                n: np.random.SeedSequence(
                    entropy=root.entropy, spawn_key=(n,)
                ).spawn(total_blocks)
                for n, _ in self._groups
            }

        plan = (
            _RefinementPlan(self._targets, self._probe_resolution_ms, self._times_ms)
            if self._probe_resolution_ms is not None
            else None
        )
        shardable = (
            self._workers > 1
            and sequential is None
            and not self._keep_samples
            and trials > self._chunk_size
            # Workers re-resolve the backend by *name*, so sharding is only
            # sound for the registry's own instances: an ad-hoc instance —
            # even one shadowing a registered name — would be silently
            # replaced by the builtin implementation in every worker chunk.
            # Such sweeps run serially instead.
            and is_registry_instance(self._kernel)
        )
        if shardable:
            processed = self._run_sharded(
                trials, accumulators, block_seeds, root_entropy, total_blocks, plan
            )
        else:
            processed = self._run_serial(trials, accumulators, sequential, block_seeds, plan)

        # One shared write-arrivals matrix per replication factor: every
        # configuration in a group references the same per-batch arrays, so
        # concatenating once avoids duplicating the (trials x N) matrix.
        shared_arrivals: dict[int, np.ndarray | None] = {}
        if self._keep_samples:
            for n, config_indices in self._groups:
                kept = accumulators[config_indices[0]].kept_results()
                arrays = [result.write_arrivals_ms for result in kept]
                shared_arrivals[n] = (
                    np.concatenate(arrays, axis=0)
                    if arrays and all(a is not None for a in arrays)
                    else None
                )

        return SweepResult(
            results=tuple(
                accumulator.finalize(
                    self._confidence,
                    shared_arrivals.get(accumulator.config.n),
                    probe_resolution_ms=self._probe_resolution_ms,
                )
                for accumulator in accumulators
            ),
            trials_requested=trials,
            trials_run=processed,
            chunk_size=self._chunk_size,
            tolerance=self._tolerance,
            confidence=self._confidence,
            workers=self._workers,
            probe_resolution_ms=self._probe_resolution_ms,
            target_probabilities=self._targets,
            kernel_backend=self._kernel.name,
        )

    def _should_stop(
        self,
        accumulators: Sequence[_ConfigAccumulator],
        processed: int,
        trials: int,
        plan: _RefinementPlan | None,
        tables: Sequence[tuple[np.ndarray, np.ndarray, np.ndarray]] | None = None,
    ) -> bool:
        """The early-stopping decision, shared by serial and sharded runs.

        Evaluated after every accumulated chunk (never after the final one),
        so a sharded coordinator checking merged partials at each chunk
        boundary stops at exactly the trial count the serial loop would.
        With adaptive refinement the gate additionally requires every bracket
        to have narrowed to the probe resolution and its endpoints — the
        probes the reported crossing rests on — to meet the tolerance with
        their own observation counts.
        """
        if self._tolerance is None or processed >= trials or processed < self._min_trials:
            return False
        if not all(
            accumulator.max_margin(self._confidence) <= self._tolerance
            for accumulator in accumulators
        ):
            return False
        if plan is not None:
            if tables is None:
                tables = plan.probe_tables(accumulators)
            if not plan.complete(tables):
                return False
            if plan.bracket_margin(tables, self._confidence) > self._tolerance:
                return False
        return True

    def _run_serial(
        self,
        trials: int,
        accumulators: list[_ConfigAccumulator],
        sequential: np.random.Generator | None,
        block_seeds: Mapping[int, list],
        plan: _RefinementPlan | None,
    ) -> int:
        processed = 0
        chunk_index = 0
        while processed < trials:
            if plan is not None:
                plan.activate_due(chunk_index, accumulators)
            count = min(self._chunk_size, trials - processed)
            if sequential is not None:
                for n, config_indices in self._groups:
                    batch = sample_wars_batch(
                        self._distributions,
                        count,
                        n,
                        sequential,
                        kernel_backend=self._kernel,
                    )
                    for index in config_indices:
                        accumulators[index].update(batch.reduce(self._configs[index]))
            else:
                _accumulate_seeded_span(
                    self._distributions,
                    self._configs,
                    self._groups,
                    block_seeds,
                    accumulators,
                    processed,
                    count,
                    kernel=self._kernel,
                )
            processed += count
            tables = plan.probe_tables(accumulators) if plan is not None else None
            if self._should_stop(accumulators, processed, trials, plan, tables):
                break
            if plan is not None and processed < trials:
                plan.decide(tables, chunk_index)
            chunk_index += 1
        return processed

    def _run_sharded(
        self,
        trials: int,
        accumulators: list[_ConfigAccumulator],
        block_seeds: Mapping[int, list],
        root_entropy: object,
        total_blocks: int,
        plan: _RefinementPlan | None,
    ) -> int:
        """Farm seed-mode chunks to a process pool and merge in block order."""
        # First chunk inline: freezes every histogram's bin layout exactly as
        # the serial loop would, providing the workers' template accumulators.
        count = min(self._chunk_size, trials)
        _accumulate_seeded_span(
            self._distributions,
            self._configs,
            self._groups,
            block_seeds,
            accumulators,
            0,
            count,
            kernel=self._kernel,
        )
        processed = count
        tables = plan.probe_tables(accumulators) if plan is not None else None
        if processed >= trials or self._should_stop(accumulators, processed, trials, plan, tables):
            return processed
        if plan is not None:
            plan.decide(tables, 0)

        tasks = [
            (start, min(self._chunk_size, trials - start))
            for start in range(processed, trials, self._chunk_size)
        ]
        spec = _WorkerSpec(
            distributions=self._distributions,
            configs=self._configs,
            groups=self._groups,
            templates=tuple(accumulator.spawn_empty() for accumulator in accumulators),
            entropy=root_entropy,
            total_blocks=total_blocks,
            kernel_backend=self._kernel.name,
            workers=self._workers,
        )
        # An adaptive run may only speculate REFINE_ACTIVATION_LAG + 1 chunks
        # past the merge frontier: chunk j's probe set depends on decisions
        # through boundary j - 1 - lag, which require chunks through that
        # index to be merged.  Without refinement every chunk's grid is known
        # upfront and the whole task list can be in flight at once.
        window = len(tasks) if plan is None else REFINE_ACTIVATION_LAG + 1
        # Fork keeps pool start-up negligible where available — but only
        # while no parallel JIT kernel has ever executed in this process:
        # numba's threading layers are not fork-safe (an OpenMP layer
        # terminates or deadlocks forked children), and once a layer is live
        # — whether from this engine's inline first chunk or from any
        # earlier run in the same process — forking is off the table.
        # Such sweeps get a spawn pool instead; the worker entry points are
        # module-level and the spec picklable, so spawn works identically,
        # just with a slower start (the JIT recompiles from its on-disk
        # cache in each worker).
        if not jit_has_run() and "fork" in multiprocessing.get_all_start_methods():
            context = multiprocessing.get_context("fork")
        else:
            context = multiprocessing.get_context("spawn")
        with context.Pool(
            processes=min(self._workers, len(tasks)),
            initializer=_init_worker,
            initargs=(spec,),
        ) as pool:
            # Tasks are submitted in block order and merged in block order
            # (a sliding window of async results), so the stopping and
            # refinement decisions see exactly the serial loop's state at
            # every chunk boundary.  Breaking out of the loop lets the pool
            # context terminate whatever speculative chunks were still in
            # flight.
            in_flight: deque = deque()
            next_task = 0
            merged_chunks = 0  # merged worker chunks; inline chunk 0 excluded
            while in_flight or next_task < len(tasks):
                while next_task < len(tasks) and len(in_flight) < window:
                    chunk_index = next_task + 1
                    extra = () if plan is None else plan.probes_for_chunk(chunk_index)
                    task = (*tasks[next_task], extra)
                    in_flight.append(
                        (tasks[next_task], pool.apply_async(_worker_run_chunk, (task,)))
                    )
                    next_task += 1
                (_, count), handle = in_flight.popleft()
                partials = handle.get()
                chunk_index = merged_chunks + 1
                if plan is not None:
                    plan.activate_due(chunk_index, accumulators)
                for accumulator, partial in zip(accumulators, partials):
                    accumulator.merge(partial)
                merged_chunks += 1
                processed += count
                tables = plan.probe_tables(accumulators) if plan is not None else None
                if self._should_stop(accumulators, processed, trials, plan, tables):
                    break
                if plan is not None and processed < trials:
                    plan.decide(tables, chunk_index)
        return processed
