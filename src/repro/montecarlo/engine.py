"""Shared-sample batched Monte Carlo engine for multi-configuration sweeps.

The paper's evaluation (Figures 4-7, Table 4, the §6 SLA search) repeatedly
evaluates one latency environment under many (R, W) quorum configurations.
The four WARS delay matrices depend only on the latency distributions and the
replication factor ``N`` — not on the quorum sizes — so drawing them once per
batch and reducing every configuration against the shared samples turns an
O(configs x trials) sampling cost into O(trials).

Why one draw is valid across configurations
-------------------------------------------
For a fixed latency environment, a WARS trial is a joint draw of the four
delay matrices ``(W, A, R, S)`` of shape ``(trials, N)``.  The quorum sizes
``R`` and ``W`` enter only through *reductions* of that draw: the commit
latency is the ``W``-th order statistic of ``W[i] + A[i]``, the read latency
the ``R``-th order statistic of ``R[i] + S[i]``, and the staleness threshold
couples the two through the responder order.  Evaluating several
configurations against one draw therefore samples each configuration from
exactly the same distribution as independent draws would — the estimators are
unbiased per configuration — while additionally making the *differences*
between configurations lower-variance, because every configuration sees the
same trials (common random numbers).  What the sharing deliberately preserves
is the per-trial coupling: for one trial, the commit latency, responder order,
and freshness margins come from the same four matrices, so quantities like
"threshold(R=2) <= threshold(R=1)" hold trial-for-trial, not just in
expectation.  What it removes is only the *independence between
configurations*, which none of the paper's per-configuration statistics
require.

Chunking and reproducibility
----------------------------
Trials are processed in fixed-size chunks with streaming accumulation:
consistency counts at the probe times are exact, while staleness thresholds
and operation latencies accumulate into :class:`StreamingHistogram` sketches
whose bin edges are frozen after the first chunk.  Two RNG regimes are
supported:

* Passing a ``numpy.random.Generator`` consumes it sequentially, exactly the
  way :meth:`repro.core.wars.WARSModel.sample` would: a single-chunk run with
  a generator in the same state reproduces the kernel's trials bit-for-bit.
* Passing an integer seed (or ``None``) derives one child stream per internal
  sampling block of ``SAMPLE_BLOCK`` trials from a ``SeedSequence``.  Because
  block boundaries are fixed (chunk sizes are rounded up to a multiple of
  ``SAMPLE_BLOCK``), the sampled trials — and therefore every accumulated
  count — are invariant to the chosen chunk size.

Optional early stopping halts the sweep once the Wilson score interval
(:func:`repro.montecarlo.convergence.wilson_interval`) of every configuration
at every probe time is tighter than a requested half-width tolerance.

Accuracy: consistency probabilities at probe times are exact counts.
Quantities inverted from the sketches (t-visibility, latency percentiles)
carry a sub-bin interpolation error — well under 1% at the default
resolution, and in practice dominated by the seed-to-seed Monte Carlo noise
of the quantile itself at the trial counts the experiments use.  When exact
order statistics are required, run with ``keep_samples=True``: percentile and
t-visibility queries then use the retained per-trial arrays and match
:class:`~repro.core.wars.WARSTrialResult` exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import ceil
from typing import Iterator, Mapping, Sequence

import numpy as np

from repro.core.quorum import ReplicaConfig
from repro.core.wars import WARSSampleBatch, WARSTrialResult, sample_wars_batch
from repro.exceptions import AnalysisError, ConfigurationError
from repro.latency.production import WARSDistributions
from repro.montecarlo.convergence import ProbabilityEstimate, wilson_interval

__all__ = [
    "SAMPLE_BLOCK",
    "DEFAULT_CHUNK_SIZE",
    "StreamingHistogram",
    "ConfigSweepResult",
    "SweepResult",
    "SweepEngine",
    "min_trials_for_quantile",
]

#: Fixed internal sampling granularity (trials per RNG block in seed mode).
#: Chunk sizes are rounded up to a multiple of this so that block boundaries —
#: and therefore seeded sample streams — do not depend on the chunk size.
SAMPLE_BLOCK: int = 8_192

#: Default chunk size (trials accumulated between convergence checks).
DEFAULT_CHUNK_SIZE: int = 65_536


def min_trials_for_quantile(quantile: float, tail_samples: int = 100) -> int:
    """Early-stopping floor for a sweep that reports the ``quantile``-quantile.

    The Wilson tolerance only constrains probe-time consistency estimates, so
    a caller that reports tail quantiles (t-visibility at 99.9%, p99.9
    latency) should not let a loose tolerance stop the sweep before the tail
    has ~``tail_samples`` observations: ``ceil(tail_samples / (1 - q))``.
    """
    if not 0.0 < quantile <= 1.0:
        raise ConfigurationError(f"quantile must be in (0, 1], got {quantile}")
    if quantile == 1.0:
        # The exact maximum never converges by tail-count; disable early
        # stopping in practice by requiring an unattainably large floor.
        return np.iinfo(np.int64).max
    return int(ceil(tail_samples / (1.0 - quantile)))


class StreamingHistogram:
    """A fixed-bin streaming histogram with exact extremes.

    Bin edges are frozen from the range of the first batch of values; later
    values outside that range fall into exact underflow/overflow buckets whose
    spans are bounded by the tracked global minimum and maximum.  Quantile
    queries interpolate within a bucket, so ``quantile(0.0)`` and
    ``quantile(1.0)`` return the exact extremes and degenerate (constant)
    data is reproduced exactly.

    With ``log_scale=True`` (and a strictly positive first batch) the bins are
    geometrically spaced, giving constant *relative* resolution — the right
    shape for heavy-tailed latency data whose p50 and p99.9 differ by orders
    of magnitude.  Data that turns out non-positive falls back to linear bins.
    """

    __slots__ = (
        "_bins",
        "_log_scale",
        "_edges",
        "_counts",
        "_underflow",
        "_overflow",
        "_count",
        "_min",
        "_max",
    )

    def __init__(self, bins: int = 2_048, log_scale: bool = False) -> None:
        if bins < 1:
            raise AnalysisError(f"histogram bin count must be >= 1, got {bins}")
        self._bins = bins
        self._log_scale = log_scale
        self._edges: np.ndarray | None = None
        self._counts: np.ndarray | None = None
        self._underflow = 0
        self._overflow = 0
        self._count = 0
        self._min = float("inf")
        self._max = float("-inf")

    @property
    def count(self) -> int:
        """Total number of accumulated values."""
        return self._count

    @property
    def min(self) -> float:
        """Exact minimum of the accumulated values."""
        if self._count == 0:
            raise AnalysisError("histogram is empty")
        return self._min

    @property
    def max(self) -> float:
        """Exact maximum of the accumulated values."""
        if self._count == 0:
            raise AnalysisError("histogram is empty")
        return self._max

    def update(self, values: np.ndarray) -> None:
        """Accumulate a batch of values."""
        values = np.asarray(values, dtype=float).ravel()
        if values.size == 0:
            return
        self._min = min(self._min, float(values.min()))
        self._max = max(self._max, float(values.max()))
        if self._edges is None:
            lo, hi = self._min, self._max
            if not hi > lo:
                # Degenerate first batch: give the bins a tiny span; quantile
                # queries short-circuit on min == max anyway.
                hi = lo + max(abs(lo), 1.0) * 1e-9
            # Pad the frozen range well beyond the first batch's extremes so
            # that the (heavier) tail of later batches still lands in binned
            # territory instead of the single coarse overflow bucket.
            if self._log_scale and lo > 0.0:
                self._edges = np.geomspace(lo / 4.0, hi * 64.0, self._bins + 1)
            else:
                span = hi - lo
                self._edges = np.linspace(lo - 0.5 * span, hi + 2.0 * span, self._bins + 1)
            self._counts = np.zeros(self._bins, dtype=np.int64)
        self._underflow += int(np.count_nonzero(values < self._edges[0]))
        self._overflow += int(np.count_nonzero(values > self._edges[-1]))
        self._counts += np.histogram(values, bins=self._edges)[0]
        self._count += int(values.size)

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``q`` in [0, 1]) of the accumulated values."""
        if self._count == 0:
            raise AnalysisError("cannot query quantiles of an empty histogram")
        if not 0.0 <= q <= 1.0:
            raise AnalysisError(f"quantile must be in [0, 1], got {q}")
        if self._min == self._max:
            return self._min
        assert self._edges is not None and self._counts is not None
        lows = np.concatenate(([self._min], self._edges[:-1], [self._edges[-1]]))
        highs = np.concatenate(([self._edges[0]], self._edges[1:], [self._max]))
        counts = np.concatenate(([self._underflow], self._counts, [self._overflow]))
        cumulative = np.cumsum(counts)
        target = q * self._count
        index = int(np.searchsorted(cumulative, target, side="left"))
        index = min(index, counts.size - 1)
        below = float(cumulative[index - 1]) if index > 0 else 0.0
        in_bucket = float(counts[index])
        fraction = (target - below) / in_bucket if in_bucket > 0 else 0.0
        low = float(lows[index])
        high = max(float(highs[index]), low)
        if self._log_scale and low > 0.0:
            value = low * (high / low) ** fraction
        else:
            value = low + (high - low) * fraction
        # The padded edges can spill past the observed extremes; the data
        # cannot.
        return min(max(value, self._min), self._max)

    def percentile(self, p: float) -> float:
        """Estimate the latency at percentile ``p`` (``p`` in [0, 100])."""
        if not 0.0 <= p <= 100.0:
            raise AnalysisError(f"percentile must be in [0, 100], got {p}")
        return self.quantile(p / 100.0)


@dataclass(frozen=True)
class ConfigSweepResult:
    """Streaming summary of one configuration's share of a sweep.

    Consistency counts at the probe times are exact; threshold and latency
    distributions are histogram sketches.  When the engine was constructed
    with ``keep_samples=True``, :meth:`as_trial_result` exposes the raw
    per-trial arrays as a :class:`~repro.core.wars.WARSTrialResult`.
    """

    config: ReplicaConfig
    trials: int
    times_ms: tuple[float, ...]
    #: Exact count of trials whose staleness threshold is <= the probe time.
    consistent_counts: tuple[int, ...]
    #: Exact count of trials consistent immediately after commit (t = 0).
    nonpositive_thresholds: int
    confidence: float
    _threshold_histogram: StreamingHistogram = field(repr=False)
    _read_histogram: StreamingHistogram = field(repr=False)
    _write_histogram: StreamingHistogram = field(repr=False)
    _samples: WARSTrialResult | None = field(repr=False, default=None)

    def consistency_probability(self, t_ms: float) -> float:
        """P(consistent read at ``t_ms`` after commit): exact at probe times.

        Probe times use the exact streaming counts; times between probes are
        linearly interpolated.  Times beyond the last probe raise — unlike
        the exact-for-any-t :meth:`WARSTrialResult.consistency_probability`,
        a streaming summary has no information past its probe grid, and
        silently clamping to the last probe's value would understate the
        curve.
        """
        if t_ms < 0:
            raise ConfigurationError(f"time since commit must be non-negative, got {t_ms}")
        if t_ms == 0.0:
            return self.probability_never_stale()
        times = np.asarray(self.times_ms)
        if t_ms > times[-1]:
            raise ConfigurationError(
                f"t={t_ms} lies beyond this sweep's probe grid (max probe "
                f"{times[-1]}); include it in the engine's times_ms"
            )
        index = np.searchsorted(times, t_ms)
        if index < times.size and times[index] == t_ms:
            return self.consistent_counts[index] / self.trials
        probabilities = np.asarray(self.consistent_counts) / self.trials
        return float(np.interp(t_ms, times, probabilities))

    def consistency_curve(self, times_ms: Sequence[float] | None = None) -> list[tuple[float, float]]:
        """``(t, P(consistent at t))`` pairs (defaults to the probe grid)."""
        times = self.times_ms if times_ms is None else times_ms
        return [(float(t), self.consistency_probability(float(t))) for t in times]

    def probability_never_stale(self) -> float:
        """Exact fraction of trials consistent even at ``t = 0``."""
        return self.nonpositive_thresholds / self.trials

    def estimate_at(self, t_ms: float, confidence: float | None = None) -> ProbabilityEstimate:
        """Wilson interval for the consistency probability at a probe time."""
        times = np.asarray(self.times_ms)
        index = np.searchsorted(times, t_ms)
        if index >= times.size or times[index] != t_ms:
            raise ConfigurationError(
                f"t={t_ms} is not one of this sweep's probe times {self.times_ms}"
            )
        return wilson_interval(
            self.consistent_counts[index],
            self.trials,
            confidence if confidence is not None else self.confidence,
        )

    def max_margin(self, confidence: float | None = None) -> float:
        """Largest Wilson half-width across all probe times."""
        return max(
            self.estimate_at(t, confidence).margin for t in self.times_ms
        )

    def t_visibility(self, target_probability: float) -> float:
        """Smallest ``t`` (ms) reaching the target probability of consistency.

        Strict quorums (whose thresholds are all non-positive) report exactly
        0.0 via the exact non-positive count; otherwise the threshold
        histogram sketch is inverted.
        """
        if not 0.0 < target_probability <= 1.0:
            raise ConfigurationError(
                f"target probability must be in (0, 1], got {target_probability}"
            )
        needed = ceil(target_probability * self.trials)
        if needed <= self.nonpositive_thresholds:
            return 0.0
        if self._samples is not None:
            return self._samples.t_visibility(target_probability)
        return float(max(self._threshold_histogram.quantile(target_probability), 0.0))

    def read_latency_percentile(self, percentile: float) -> float:
        """Read operation latency (ms) at the given percentile.

        Sketch-based when streaming; exact (``numpy.percentile`` over the
        retained trials) when the engine ran with ``keep_samples=True``.
        """
        if self._samples is not None:
            return float(np.percentile(self._samples.read_latencies_ms, percentile))
        return self._read_histogram.percentile(percentile)

    def write_latency_percentile(self, percentile: float) -> float:
        """Write (commit) latency (ms) at the given percentile.

        Sketch-based when streaming; exact when the engine ran with
        ``keep_samples=True``.
        """
        if self._samples is not None:
            return float(np.percentile(self._samples.commit_latencies_ms, percentile))
        return self._write_histogram.percentile(percentile)

    def as_trial_result(self) -> WARSTrialResult:
        """Raw per-trial arrays (requires ``keep_samples=True`` on the engine)."""
        if self._samples is None:
            raise AnalysisError(
                "raw samples were not retained; construct the SweepEngine with "
                "keep_samples=True"
            )
        return self._samples


@dataclass(frozen=True)
class SweepResult:
    """The outcome of one :meth:`SweepEngine.run` call."""

    results: tuple[ConfigSweepResult, ...]
    trials_requested: int
    trials_run: int
    chunk_size: int
    tolerance: float | None
    confidence: float

    @property
    def stopped_early(self) -> bool:
        """True when early stopping ended the sweep before the trial budget."""
        return self.trials_run < self.trials_requested

    @property
    def converged(self) -> bool:
        """True when every configuration meets the tolerance at every probe time."""
        if self.tolerance is None:
            return False
        return self.max_margin() <= self.tolerance

    def max_margin(self) -> float:
        """Largest Wilson half-width across all configurations and probe times."""
        return max(result.max_margin() for result in self.results)

    def for_config(self, config: ReplicaConfig) -> ConfigSweepResult:
        """Look up the summary for one configuration."""
        for result in self.results:
            if result.config == config:
                return result
        raise ConfigurationError(f"configuration {config.label()} was not part of this sweep")

    def __iter__(self) -> Iterator[ConfigSweepResult]:
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)


class _ConfigAccumulator:
    """Streaming per-configuration accumulation across chunks."""

    def __init__(
        self,
        config: ReplicaConfig,
        times_ms: np.ndarray,
        histogram_bins: int,
        keep_samples: bool,
    ) -> None:
        self.config = config
        self.times_ms = times_ms
        self.trials = 0
        self.consistent_counts = np.zeros(times_ms.size, dtype=np.int64)
        self.nonpositive_thresholds = 0
        # Thresholds can be negative (strict quorums), so they bin linearly;
        # operation latencies are positive and heavy-tailed, so they get
        # constant relative resolution from log-spaced bins.
        self.threshold_histogram = StreamingHistogram(histogram_bins)
        self.read_histogram = StreamingHistogram(histogram_bins, log_scale=True)
        self.write_histogram = StreamingHistogram(histogram_bins, log_scale=True)
        self._kept: list[WARSTrialResult] | None = [] if keep_samples else None

    def update(self, result: WARSTrialResult) -> None:
        thresholds = result.staleness_thresholds_ms
        self.trials += thresholds.size
        if self.times_ms.size:
            self.consistent_counts += np.count_nonzero(
                thresholds[:, None] <= self.times_ms[None, :], axis=0
            )
        self.nonpositive_thresholds += int(np.count_nonzero(thresholds <= 0.0))
        self.threshold_histogram.update(thresholds)
        self.read_histogram.update(result.read_latencies_ms)
        self.write_histogram.update(result.commit_latencies_ms)
        if self._kept is not None:
            self._kept.append(result)

    def max_margin(self, confidence: float) -> float:
        # The probe grid always contains t=0 (SweepEngine injects it), so the
        # counts array is never empty.
        return max(
            wilson_interval(int(count), self.trials, confidence).margin
            for count in self.consistent_counts
        )

    def kept_results(self) -> list[WARSTrialResult]:
        return self._kept or []

    def finalize(
        self, confidence: float, shared_arrivals: np.ndarray | None = None
    ) -> ConfigSweepResult:
        samples: WARSTrialResult | None = None
        if self._kept is not None:
            samples = WARSTrialResult(
                config=self.config,
                commit_latencies_ms=np.concatenate(
                    [kept.commit_latencies_ms for kept in self._kept]
                ),
                read_latencies_ms=np.concatenate(
                    [kept.read_latencies_ms for kept in self._kept]
                ),
                staleness_thresholds_ms=np.concatenate(
                    [kept.staleness_thresholds_ms for kept in self._kept]
                ),
                write_arrivals_ms=shared_arrivals,
            )
        return ConfigSweepResult(
            config=self.config,
            trials=self.trials,
            times_ms=tuple(float(t) for t in self.times_ms),
            consistent_counts=tuple(int(c) for c in self.consistent_counts),
            nonpositive_thresholds=self.nonpositive_thresholds,
            confidence=confidence,
            _threshold_histogram=self.threshold_histogram,
            _read_histogram=self.read_histogram,
            _write_histogram=self.write_histogram,
            _samples=samples,
        )


class SweepEngine:
    """Evaluate many (N, R, W) configurations against shared WARS samples.

    Parameters
    ----------
    distributions:
        The latency environment shared by every configuration in the sweep.
    configs:
        The configurations to evaluate.  Configurations may mix replication
        factors; each distinct ``N`` gets its own shared draw per chunk (the
        delay matrices have ``N`` columns, so they cannot be shared across
        replication factors).
    times_ms:
        Probe times (ms since commit) at which exact consistency counts — and
        the early-stopping Wilson intervals — are maintained.  ``0.0`` is
        always included.
    chunk_size:
        Trials sampled per accumulation step; rounded up to a multiple of
        :data:`SAMPLE_BLOCK`.  Bounds peak memory at
        ``O(chunk_size * max(N))`` and sets the early-stopping cadence.
    tolerance:
        Optional Wilson half-width target; when every configuration's interval
        at every probe time is at least this tight, the sweep stops early.
        The tolerance governs the probe-time consistency estimates only —
        callers that report tail quantiles (t-visibility, p99.9 latency)
        should combine it with a ``min_trials`` floor sized for the tail.
    min_trials:
        Early stopping never triggers before this many trials, regardless of
        the tolerance.  Callers reporting a ``q``-quantile should set it to
        roughly ``100 / (1 - q)`` so the quantile rests on at least ~100 tail
        samples.
    confidence:
        Confidence level for the Wilson intervals (default 95%).
    histogram_bins:
        Resolution of the streaming threshold/latency histograms.
    keep_samples:
        Retain the raw per-trial arrays (memory O(trials * N)); required for
        :meth:`ConfigSweepResult.as_trial_result`.
    """

    def __init__(
        self,
        distributions: WARSDistributions,
        configs: Sequence[ReplicaConfig],
        *,
        times_ms: Sequence[float] = (),
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        tolerance: float | None = None,
        min_trials: int = 1,
        confidence: float = 0.95,
        histogram_bins: int = 4_096,
        keep_samples: bool = False,
    ) -> None:
        self._configs = tuple(configs)
        if not self._configs:
            raise ConfigurationError("a sweep requires at least one configuration")
        if chunk_size < 1:
            raise ConfigurationError(f"chunk size must be >= 1, got {chunk_size}")
        if min_trials < 1:
            raise ConfigurationError(f"min_trials must be >= 1, got {min_trials}")
        if tolerance is not None and not 0.0 < tolerance < 1.0:
            raise ConfigurationError(
                f"tolerance must be a probability half-width in (0, 1), got {tolerance}"
            )
        if not 0.0 < confidence < 1.0:
            raise ConfigurationError(f"confidence must be in (0, 1), got {confidence}")
        times = np.unique(np.asarray([0.0, *times_ms], dtype=float))
        if times.size and times[0] < 0.0:
            raise ConfigurationError("probe times since commit must be non-negative")
        self._distributions = distributions
        self._times_ms = times
        self._chunk_size = ceil(chunk_size / SAMPLE_BLOCK) * SAMPLE_BLOCK
        self._tolerance = tolerance
        self._min_trials = min_trials
        self._confidence = confidence
        self._histogram_bins = histogram_bins
        self._keep_samples = keep_samples
        # Group configuration indices by replication factor, preserving the
        # first-seen group order (which fixes the RNG consumption order).
        groups: dict[int, list[int]] = {}
        for index, config in enumerate(self._configs):
            groups.setdefault(config.n, []).append(index)
        self._groups = groups

    @property
    def configs(self) -> tuple[ReplicaConfig, ...]:
        return self._configs

    def run(
        self, trials: int, rng: np.random.Generator | int | None = None
    ) -> SweepResult:
        """Run up to ``trials`` shared-sample trials and summarise every config."""
        if trials < 1:
            raise ConfigurationError(f"trial count must be >= 1, got {trials}")

        accumulators = [
            _ConfigAccumulator(
                config, self._times_ms, self._histogram_bins, self._keep_samples
            )
            for config in self._configs
        ]

        sequential = rng if isinstance(rng, np.random.Generator) else None
        block_seeds: Mapping[int, list] = {}
        if sequential is None:
            root = np.random.SeedSequence(rng)
            total_blocks = ceil(trials / SAMPLE_BLOCK)
            # Group streams are keyed by the replication factor itself (via
            # spawn_key), not by group order, so a configuration's samples for
            # a given seed are identical whether it is swept alone or
            # alongside configurations with other replication factors.
            block_seeds = {
                n: np.random.SeedSequence(
                    entropy=root.entropy, spawn_key=(n,)
                ).spawn(total_blocks)
                for n in self._groups
            }

        processed = 0
        while processed < trials:
            count = min(self._chunk_size, trials - processed)
            for n, config_indices in self._groups.items():

                def accumulate(batch: WARSSampleBatch) -> None:
                    for index in config_indices:
                        accumulators[index].update(batch.reduce(self._configs[index]))

                if sequential is not None:
                    accumulate(sample_wars_batch(self._distributions, count, n, sequential))
                else:
                    offset = 0
                    while offset < count:
                        start = processed + offset
                        rows = min(SAMPLE_BLOCK, count - offset)
                        generator = np.random.default_rng(
                            block_seeds[n][start // SAMPLE_BLOCK]
                        )
                        accumulate(
                            sample_wars_batch(self._distributions, rows, n, generator)
                        )
                        offset += rows
            processed += count
            if (
                self._tolerance is not None
                and processed < trials
                and processed >= self._min_trials
            ):
                if all(
                    accumulator.max_margin(self._confidence) <= self._tolerance
                    for accumulator in accumulators
                ):
                    break

        # One shared write-arrivals matrix per replication factor: every
        # configuration in a group references the same per-batch arrays, so
        # concatenating once avoids duplicating the (trials x N) matrix.
        shared_arrivals: dict[int, np.ndarray | None] = {}
        if self._keep_samples:
            for n, config_indices in self._groups.items():
                kept = accumulators[config_indices[0]].kept_results()
                arrays = [result.write_arrivals_ms for result in kept]
                shared_arrivals[n] = (
                    np.concatenate(arrays, axis=0)
                    if arrays and all(a is not None for a in arrays)
                    else None
                )

        return SweepResult(
            results=tuple(
                accumulator.finalize(
                    self._confidence,
                    shared_arrivals.get(accumulator.config.n),
                )
                for accumulator in accumulators
            ),
            trials_requested=trials,
            trials_run=processed,
            chunk_size=self._chunk_size,
            tolerance=self._tolerance,
            confidence=self._confidence,
        )
