"""t-visibility sweeps built on the WARS Monte Carlo kernel.

These helpers implement the repeated patterns of the paper's evaluation
(Figures 4, 6, 7 and Table 4): evaluate the probability-of-consistency curve
over a grid of times for a set of (R, W) configurations, or invert the curve
to find the ``t`` achieving a target probability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.core.quorum import ReplicaConfig
from repro.core.wars import WARSModel
from repro.exceptions import ConfigurationError
from repro.latency.production import WARSDistributions
from repro.montecarlo.convergence import ProbabilityEstimate, wilson_interval
from repro.montecarlo.engine import (
    DEFAULT_CHUNK_SIZE,
    SweepEngine,
    min_trials_for_quantile,
)

__all__ = ["TVisibilityCurve", "visibility_curve", "visibility_curves", "t_visibility_table"]


@dataclass(frozen=True)
class TVisibilityCurve:
    """A (t, probability-of-consistency) curve for one configuration."""

    config: ReplicaConfig
    label: str
    times_ms: tuple[float, ...]
    probabilities: tuple[float, ...]
    trials: int

    def probability_at(self, t_ms: float) -> float:
        """Interpolated probability of consistency at an arbitrary ``t``."""
        return float(np.interp(t_ms, self.times_ms, self.probabilities))

    def t_for_probability(self, target: float) -> float:
        """Smallest grid time whose probability reaches the target (inf if never)."""
        if not 0.0 < target <= 1.0:
            raise ConfigurationError(f"target probability must be in (0, 1], got {target}")
        for t_ms, probability in zip(self.times_ms, self.probabilities):
            if probability >= target:
                return t_ms
        return float("inf")

    def confidence_at(self, t_ms: float, confidence: float = 0.95) -> ProbabilityEstimate:
        """Wilson interval for the estimate at ``t_ms`` given the trial count."""
        probability = self.probability_at(t_ms)
        successes = int(round(probability * self.trials))
        return wilson_interval(successes, self.trials, confidence)

    def as_rows(self) -> list[dict[str, float]]:
        """Rows of ``{"t_ms", "p_consistent"}`` for table rendering."""
        return [
            {"t_ms": t, "p_consistent": p}
            for t, p in zip(self.times_ms, self.probabilities)
        ]


def visibility_curve(
    distributions: WARSDistributions,
    config: ReplicaConfig,
    times_ms: Sequence[float],
    trials: int = 100_000,
    rng: np.random.Generator | int | None = None,
    label: str | None = None,
    streaming: bool = False,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    workers: int = 1,
) -> TVisibilityCurve:
    """Estimate the probability-of-consistency curve for one configuration.

    By default the whole trial batch is materialised at once (exact, memory
    O(trials * N)).  With ``streaming=True`` (or ``workers > 1``) the trials
    stream through :class:`~repro.montecarlo.engine.SweepEngine` in
    ``chunk_size`` pieces instead — memory stays bounded for arbitrarily
    large trial counts, optionally sharded across ``workers`` processes, and
    the curve's probabilities at the requested times are still exact counts
    (they are the engine's probe grid).
    """
    if streaming or workers > 1:
        engine = SweepEngine(
            distributions,
            (config,),
            times_ms=times_ms,
            chunk_size=chunk_size,
            workers=workers,
        )
        summary = engine.run(trials, rng).results[0]
        return TVisibilityCurve(
            config=config,
            label=label or f"{distributions.name} {config.label()}",
            times_ms=tuple(float(t) for t in times_ms),
            probabilities=tuple(
                summary.consistency_probability(float(t)) for t in times_ms
            ),
            trials=summary.trials,
        )
    model = WARSModel(distributions=distributions, config=config)
    result = model.sample(trials, rng)
    curve = result.consistency_curve(times_ms)
    return TVisibilityCurve(
        config=config,
        label=label or f"{distributions.name} {config.label()}",
        times_ms=tuple(t for t, _ in curve),
        probabilities=tuple(p for _, p in curve),
        trials=trials,
    )


def visibility_curves(
    distributions: WARSDistributions,
    configs: Sequence[ReplicaConfig],
    times_ms: Sequence[float],
    trials: int = 100_000,
    rng: np.random.Generator | int | None = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    tolerance: float | None = None,
    workers: int = 1,
) -> list[TVisibilityCurve]:
    """Curves for several configurations sharing one latency environment.

    All configurations are evaluated against one shared sample batch via
    :class:`~repro.montecarlo.engine.SweepEngine`, so the delay matrices are
    drawn once per chunk (not once per configuration) and the curves are
    comparable trial-for-trial.  ``tolerance`` enables early stopping once
    every curve's Wilson half-width is at least that tight at every probe
    time.  ``rng`` is forwarded to the engine verbatim: an integer seed (or
    ``None``) selects the chunk-size-invariant seeded mode, a generator is
    consumed sequentially.  ``workers`` shards seeded chunks across that many
    processes without changing any result.
    """
    engine = SweepEngine(
        distributions,
        configs,
        times_ms=times_ms,
        chunk_size=chunk_size,
        tolerance=tolerance,
        workers=workers,
    )
    sweep = engine.run(trials, rng)
    return [
        TVisibilityCurve(
            config=summary.config,
            label=f"{distributions.name} {summary.config.label()}",
            times_ms=tuple(float(t) for t in times_ms),
            probabilities=tuple(
                summary.consistency_probability(float(t)) for t in times_ms
            ),
            trials=sweep.trials_run,
        )
        for summary in sweep
    ]


def t_visibility_table(
    distributions_by_name: Mapping[str, WARSDistributions],
    configs: Sequence[ReplicaConfig],
    target_probability: float = 0.999,
    latency_percentile: float = 99.9,
    trials: int = 100_000,
    rng: np.random.Generator | int | None = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    tolerance: float | None = None,
    workers: int = 1,
) -> list[dict[str, object]]:
    """Build Table 4 style rows: per (environment, config), tail latencies and t-visibility.

    Each row contains the environment name, the configuration, the read and
    write latency at ``latency_percentile``, and the ``t`` needed to reach
    ``target_probability`` probability of consistent reads.  Every environment
    evaluates all configurations against one shared sample batch.  ``rng`` is
    forwarded to each environment's engine verbatim, so an integer seed keeps
    the results independent of ``chunk_size`` (environments then share the
    same underlying uniforms — common random numbers across rows).
    ``workers`` shards each environment's seeded sweep across processes
    without changing any number.
    """
    # The table's headline columns are tail quantiles, which the Wilson
    # tolerance does not constrain; keep early stopping from cutting the
    # tail support below ~100 samples.
    tail_floor = max(
        min_trials_for_quantile(target_probability),
        min_trials_for_quantile(latency_percentile / 100.0),
    )
    rows: list[dict[str, object]] = []
    for name, distributions in distributions_by_name.items():
        engine = SweepEngine(
            distributions,
            configs,
            chunk_size=chunk_size,
            tolerance=tolerance,
            min_trials=tail_floor,
            workers=workers,
        )
        sweep = engine.run(trials, rng)
        for summary in sweep:
            rows.append(
                {
                    "environment": name,
                    "config": summary.config,
                    "read_latency_ms": summary.read_latency_percentile(latency_percentile),
                    "write_latency_ms": summary.write_latency_percentile(latency_percentile),
                    "t_visibility_ms": summary.t_visibility(target_probability),
                    "consistency_at_commit": summary.probability_never_stale(),
                }
            )
    return rows
