"""t-visibility sweeps built on the WARS Monte Carlo kernel.

These helpers implement the repeated patterns of the paper's evaluation
(Figures 4, 6, 7 and Table 4): evaluate the probability-of-consistency curve
over a grid of times for a set of (R, W) configurations, or invert the curve
to find the ``t`` achieving a target probability.

All three entry points accept ``probe_resolution_ms`` to enable the engine's
adaptive probe-grid refinement: the requested times become a coarse base grid
and the engine grows probes around each configuration's
``t_visibility(target_probability)`` crossing until it is bracketed to the
requested resolution (see the "Adaptive probe-grid refinement" section of
:mod:`repro.montecarlo.engine`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.core.quorum import ReplicaConfig
from repro.core.wars import WARSModel
from repro.exceptions import ConfigurationError
from repro.latency.production import WARSDistributions
from repro.montecarlo.convergence import ProbabilityEstimate, wilson_interval
from repro.montecarlo.engine import SweepEngine, min_trials_for_quantile

__all__ = ["TVisibilityCurve", "visibility_curve", "visibility_curves", "t_visibility_table"]


@dataclass(frozen=True)
class TVisibilityCurve:
    """A (t, probability-of-consistency) curve for one configuration.

    Attributes
    ----------
    config:
        The (N, R, W) configuration the curve describes.
    label:
        Human-readable series label (environment + configuration).
    times_ms / probabilities:
        The curve's grid.  For adaptive sweeps this is the *union* grid —
        the requested base times plus every refined probe the engine grew
        around the crossing.
    trials:
        Monte Carlo trials behind the estimates.
    probe_trials:
        Per-probe observation counts, set on adaptive curves: refined probes
        only observe the trials after their activation, so their estimates
        rest on fewer trials than the base probes'.  ``None`` (non-adaptive
        curves) means every probe saw all ``trials``.
    probe_successes:
        Exact per-probe consistent-trial counts, when the producer carried
        them through (all the shipped front-ends do).  ``None`` on curves
        built from probabilities alone; :meth:`confidence_at` then falls
        back to reconstructing counts by rounding.
    """

    config: ReplicaConfig
    label: str
    times_ms: tuple[float, ...]
    probabilities: tuple[float, ...]
    trials: int
    probe_trials: tuple[int, ...] | None = None
    probe_successes: tuple[int, ...] | None = None

    def probability_at(self, t_ms: float) -> float:
        """Interpolated probability of consistency at an arbitrary ``t``.

        Args
        ----
        t_ms:
            Time since commit, in milliseconds.

        Returns
        -------
        The linearly interpolated probability over the curve's grid.
        """
        return float(np.interp(t_ms, self.times_ms, self.probabilities))

    def t_for_probability(self, target: float) -> float:
        """Smallest ``t`` whose (interpolated) probability reaches the target.

        The inverse of :meth:`probability_at`: when the crossing falls
        between two probes, the time is linearly interpolated within the
        bracketing span — so ``probability_at(t_for_probability(p))``
        recovers ``p`` (up to the curve's own interpolation) instead of
        overshooting by up to a whole probe span on coarse grids.  Targets
        met exactly at a probe, or already met at the first probe, return
        that grid time unchanged.

        Args
        ----
        target:
            Consistency probability in (0, 1].

        Returns
        -------
        The crossing time in ms, or ``inf`` when the curve never reaches
        the target.  On an adaptive curve the bracketing span is at most
        the sweep's ``probe_resolution_ms`` near the crossing.
        """
        if not 0.0 < target <= 1.0:
            raise ConfigurationError(f"target probability must be in (0, 1], got {target}")
        probabilities = np.asarray(self.probabilities, dtype=float)
        reached = np.nonzero(probabilities >= target)[0]
        if reached.size == 0:
            return float("inf")
        index = int(reached[0])
        if index == 0 or probabilities[index] == target:
            return float(self.times_ms[index])
        # index is the *first* probe at/above the target and the exact-hit
        # case returned above, so p_low < target < p_high strictly here.
        p_low = float(probabilities[index - 1])
        p_high = float(probabilities[index])
        t_low = float(self.times_ms[index - 1])
        t_high = float(self.times_ms[index])
        fraction = (target - p_low) / (p_high - p_low)
        return t_low + fraction * (t_high - t_low)

    def confidence_at(self, t_ms: float, confidence: float = 0.95) -> ProbabilityEstimate:
        """Wilson interval for the estimate at ``t_ms`` given its trial support.

        Args
        ----
        t_ms:
            Time since commit, in milliseconds.
        confidence:
            Confidence level for the interval (default 95%).

        Returns
        -------
        A :class:`~repro.montecarlo.convergence.ProbabilityEstimate`.  At a
        probe time the interval rests on the probe's *actual* observed
        consistent count (``probe_successes``) and observation count — not a
        count reconstructed by rounding the interpolated probability, which
        can disagree with the truth on adaptive grids whose probes carry
        different denominators.  Between probes the probability is
        interpolated, the support is the *smaller* of the two bracketing
        probes' counts (the conservative choice), and the count is
        necessarily a rounded reconstruction.
        """
        times = np.asarray(self.times_ms, dtype=float)
        index = int(np.searchsorted(times, t_ms))
        on_probe = index < times.size and times[index] == t_ms
        if on_probe:
            support = (
                self.probe_trials[index]
                if self.probe_trials is not None
                else self.trials
            )
            if self.probe_successes is not None:
                return wilson_interval(
                    self.probe_successes[index], support, confidence
                )
            probability = float(self.probabilities[index])
        else:
            probability = self.probability_at(t_ms)
            support = self.trials
            if self.probe_trials is not None:
                neighbours = [
                    self.probe_trials[i]
                    for i in (index - 1, index)
                    if 0 <= i < len(self.probe_trials)
                ]
                support = min(neighbours) if neighbours else self.trials
        successes = int(round(probability * support))
        return wilson_interval(successes, support, confidence)

    def as_rows(self) -> list[dict[str, float]]:
        """Rows of ``{"t_ms", "p_consistent"}`` for table rendering."""
        return [
            {"t_ms": t, "p_consistent": p}
            for t, p in zip(self.times_ms, self.probabilities)
        ]


def _probe_supports(
    summary, curve_times: tuple[float, ...]
) -> tuple[tuple[int, ...], tuple[int, ...]]:
    """``(observation counts, consistent counts)`` per union-grid probe.

    Base probes carry the full trial count and their exact streaming counts;
    refined probes carry their own observation windows.  Both tuples come
    straight from the accumulator's integers — no probability is ever
    rounded back into a count.
    """
    observed = {float(t): summary.trials for t in summary.times_ms}
    observed.update(zip(summary.refined_times_ms, summary.refined_trials))
    successes = dict(zip((float(t) for t in summary.times_ms), summary.consistent_counts))
    successes.update(zip(summary.refined_times_ms, summary.refined_counts))
    return (
        tuple(observed[t] for t in curve_times),
        tuple(int(successes[t]) for t in curve_times),
    )


def _curve_points(
    summary, times_ms: Sequence[float], adaptive: bool
) -> tuple[
    tuple[float, ...],
    tuple[float, ...],
    tuple[int, ...] | None,
    tuple[int, ...] | None,
]:
    """``(times, probabilities, probe_trials, probe_successes)`` for one curve.

    Adaptive curves cover the full union grid with per-probe observation and
    consistent counts; non-adaptive curves sample the requested times (every
    probe saw all trials, signalled by ``probe_trials=None``) and still carry
    the exact consistent counts where the requested time is a probe.
    """
    if adaptive:
        grid = summary.probe_grid()
        curve_times = tuple(t for t, _ in grid)
        probabilities = tuple(p for _, p in grid)
        supports, successes = _probe_supports(summary, curve_times)
        return curve_times, probabilities, supports, successes
    curve_times = tuple(float(t) for t in times_ms)
    probabilities = tuple(
        summary.consistency_probability(float(t)) for t in times_ms
    )
    exact = dict(zip((float(t) for t in summary.times_ms), summary.consistent_counts))
    successes = tuple(
        int(exact.get(t, round(p * summary.trials)))
        for t, p in zip(curve_times, probabilities)
    )
    return curve_times, probabilities, None, successes


def visibility_curve(
    distributions: WARSDistributions,
    config: ReplicaConfig,
    times_ms: Sequence[float],
    trials: int = 100_000,
    rng: np.random.Generator | int | None = None,
    label: str | None = None,
    streaming: bool = False,
    chunk_size: int | None = None,
    workers: int = 1,
    target_probability: float = 0.999,
    probe_resolution_ms: float | None = None,
    kernel_backend: str | None = None,
) -> TVisibilityCurve:
    """Estimate the probability-of-consistency curve for one configuration.

    Args
    ----
    distributions:
        The WARS latency environment to sample.
    config:
        The (N, R, W) configuration to evaluate.
    times_ms:
        Times since commit (ms) to probe.  With adaptive refinement this is
        the coarse base grid.
    trials:
        Monte Carlo trial budget.
    rng:
        Integer seed (or ``None``) for the chunk-size-invariant seeded mode,
        or a ``numpy.random.Generator`` consumed sequentially.
    label:
        Series label override (defaults to environment + configuration).
    streaming:
        Route the trials through :class:`~repro.montecarlo.engine.SweepEngine`
        in bounded memory.  Implied by ``workers > 1`` or adaptive refinement.
    chunk_size:
        Engine chunk size (``None`` selects the engine default).
    workers:
        Shard seeded chunks across this many processes; results are
        identical for any worker count.
    target_probability:
        The consistency level adaptive refinement localises (only used when
        ``probe_resolution_ms`` is set).
    probe_resolution_ms:
        Enable adaptive refinement: grow probes around the
        ``t_visibility(target_probability)`` crossing until it is bracketed
        to this resolution.  The returned curve's grid is then the union of
        ``times_ms`` and the refined probes.
    kernel_backend:
        Sampling-reduction backend from :mod:`repro.kernels` (``None`` is
        the bit-for-bit NumPy reference; ``"numba"`` the fused JIT kernel;
        ``"auto"`` the fastest available).

    Returns
    -------
    A :class:`TVisibilityCurve`.

    Example
    -------
    >>> from repro import ReplicaConfig, production_fit
    >>> curve = visibility_curve(
    ...     production_fit("LNKD-SSD"), ReplicaConfig(3, 1, 1),
    ...     times_ms=(0.0, 1.0, 5.0), trials=5_000, rng=0)
    >>> 0.0 <= curve.probability_at(1.0) <= 1.0
    True
    """
    adaptive = probe_resolution_ms is not None
    if streaming or workers > 1 or adaptive:
        engine = SweepEngine(
            distributions,
            (config,),
            times_ms=times_ms,
            chunk_size=chunk_size,
            workers=workers,
            target_probability=target_probability,
            probe_resolution_ms=probe_resolution_ms,
            kernel_backend=kernel_backend,
        )
        summary = engine.run(trials, rng).results[0]
        curve_times, curve_probabilities, probe_trials, probe_successes = _curve_points(
            summary, times_ms, adaptive
        )
        return TVisibilityCurve(
            config=config,
            label=label or f"{distributions.name} {config.label()}",
            times_ms=curve_times,
            probabilities=curve_probabilities,
            trials=summary.trials,
            probe_trials=probe_trials,
            probe_successes=probe_successes,
        )
    model = WARSModel(distributions=distributions, config=config)
    result = model.sample(trials, rng, kernel_backend=kernel_backend)
    curve = result.consistency_curve(times_ms)
    counts = result.consistency_counts([t for t, _ in curve])
    return TVisibilityCurve(
        config=config,
        label=label or f"{distributions.name} {config.label()}",
        times_ms=tuple(t for t, _ in curve),
        probabilities=tuple(p for _, p in curve),
        trials=trials,
        probe_successes=tuple(int(c) for c in counts),
    )


def visibility_curves(
    distributions: WARSDistributions,
    configs: Sequence[ReplicaConfig],
    times_ms: Sequence[float],
    trials: int = 100_000,
    rng: np.random.Generator | int | None = None,
    chunk_size: int | None = None,
    tolerance: float | None = None,
    workers: int = 1,
    target_probability: float = 0.999,
    probe_resolution_ms: float | None = None,
    kernel_backend: str | None = None,
) -> list[TVisibilityCurve]:
    """Curves for several configurations sharing one latency environment.

    All configurations are evaluated against one shared sample batch via
    :class:`~repro.montecarlo.engine.SweepEngine`, so the delay matrices are
    drawn once per chunk (not once per configuration) and the curves are
    comparable trial-for-trial.

    Args
    ----
    distributions:
        The WARS latency environment shared by every configuration.
    configs:
        The (N, R, W) configurations to evaluate together.
    times_ms:
        Times since commit (ms) to probe (the base grid under adaptive
        refinement).
    trials:
        Monte Carlo trial budget shared by the sweep.
    rng:
        Forwarded to the engine verbatim: an integer seed (or ``None``)
        selects the chunk-size-invariant seeded mode, a generator is
        consumed sequentially.
    chunk_size:
        Engine chunk size (``None`` selects the engine default).
    tolerance:
        Optional Wilson half-width for early stopping.
    workers:
        Shard seeded chunks across processes without changing any result.
    target_probability:
        Consistency level adaptive refinement localises per configuration
        (only used when ``probe_resolution_ms`` is set).
    probe_resolution_ms:
        Enable adaptive refinement; each returned curve's grid becomes the
        union of ``times_ms`` and that configuration's refined probes.
    kernel_backend:
        Sampling-reduction backend from :mod:`repro.kernels` (``None`` is
        the bit-for-bit NumPy reference).

    Returns
    -------
    One :class:`TVisibilityCurve` per configuration, in input order.

    Example
    -------
    >>> from repro import ReplicaConfig, production_fit
    >>> curves = visibility_curves(
    ...     production_fit("LNKD-SSD"),
    ...     [ReplicaConfig(3, 1, 1), ReplicaConfig(3, 2, 1)],
    ...     times_ms=(0.0, 1.0, 5.0), trials=5_000, rng=0)
    >>> len(curves)
    2
    """
    adaptive = probe_resolution_ms is not None
    engine = SweepEngine(
        distributions,
        configs,
        times_ms=times_ms,
        chunk_size=chunk_size,
        tolerance=tolerance,
        workers=workers,
        target_probability=target_probability,
        probe_resolution_ms=probe_resolution_ms,
        kernel_backend=kernel_backend,
    )
    sweep = engine.run(trials, rng)
    curves = []
    for summary in sweep:
        curve_times, curve_probabilities, probe_trials, probe_successes = _curve_points(
            summary, times_ms, adaptive
        )
        curves.append(
            TVisibilityCurve(
                config=summary.config,
                label=f"{distributions.name} {summary.config.label()}",
                times_ms=curve_times,
                probabilities=curve_probabilities,
                trials=sweep.trials_run,
                probe_trials=probe_trials,
                probe_successes=probe_successes,
            )
        )
    return curves


def t_visibility_table(
    distributions_by_name: Mapping[str, WARSDistributions],
    configs: Sequence[ReplicaConfig],
    target_probability: float = 0.999,
    latency_percentile: float = 99.9,
    trials: int = 100_000,
    rng: np.random.Generator | int | None = None,
    chunk_size: int | None = None,
    tolerance: float | None = None,
    workers: int = 1,
    probe_resolution_ms: float | None = None,
    kernel_backend: str | None = None,
) -> list[dict[str, object]]:
    """Build Table 4 style rows: per (environment, config), tail latencies and t-visibility.

    Each row contains the environment name, the configuration, the read and
    write latency at ``latency_percentile``, and the ``t`` needed to reach
    ``target_probability`` probability of consistent reads.  Every environment
    evaluates all configurations against one shared sample batch.

    Args
    ----
    distributions_by_name:
        Environment name -> WARS distributions, one engine sweep each.
    configs:
        The (N, R, W) configurations evaluated under every environment.
    target_probability:
        Consistency level for the t-visibility column (and the level
        adaptive refinement localises).
    latency_percentile:
        Percentile for the read/write latency columns.
    trials:
        Monte Carlo trial budget per environment.
    rng:
        Forwarded to each environment's engine verbatim, so an integer seed
        keeps the results independent of ``chunk_size`` (environments then
        share the same underlying uniforms — common random numbers across
        rows).
    chunk_size:
        Engine chunk size (``None`` selects the engine default).
    tolerance:
        Optional Wilson half-width for early stopping.
    workers:
        Shard each environment's seeded sweep across processes without
        changing any number.
    probe_resolution_ms:
        Enable adaptive refinement.  The engines probe the coarse
        :data:`~repro.montecarlo.engine.DEFAULT_ADAPTIVE_GRID_MS` base grid
        and refine around each configuration's crossing, so the
        ``t_visibility_ms`` column is resolved to this many milliseconds
        from exact bracketing counts instead of the histogram sketch.
    kernel_backend:
        Sampling-reduction backend from :mod:`repro.kernels` (``None`` is
        the bit-for-bit NumPy reference).

    Returns
    -------
    One row dict per (environment, configuration) pair with keys
    ``environment``, ``config``, ``read_latency_ms``, ``write_latency_ms``,
    ``t_visibility_ms``, and ``consistency_at_commit``.

    Example
    -------
    >>> from repro import ReplicaConfig, production_fit
    >>> rows = t_visibility_table(
    ...     {"LNKD-SSD": production_fit("LNKD-SSD")},
    ...     [ReplicaConfig(3, 1, 1)], trials=5_000, rng=0)
    >>> sorted(rows[0])[:3]
    ['config', 'consistency_at_commit', 'environment']
    """
    # The table's headline columns are tail quantiles, which the Wilson
    # tolerance does not constrain; keep early stopping from cutting the
    # tail support below ~100 samples.
    tail_floor = max(
        min_trials_for_quantile(target_probability),
        min_trials_for_quantile(latency_percentile / 100.0),
    )
    rows: list[dict[str, object]] = []
    for name, distributions in distributions_by_name.items():
        engine = SweepEngine(
            distributions,
            configs,
            chunk_size=chunk_size,
            tolerance=tolerance,
            min_trials=tail_floor,
            workers=workers,
            # With probe_resolution_ms set the engine falls back to its
            # default coarse base grid and refines around this target;
            # otherwise the target is informational and no probes are grown.
            target_probability=target_probability,
            probe_resolution_ms=probe_resolution_ms,
            kernel_backend=kernel_backend,
        )
        sweep = engine.run(trials, rng)
        for summary in sweep:
            rows.append(
                {
                    "environment": name,
                    "config": summary.config,
                    "read_latency_ms": summary.read_latency_percentile(latency_percentile),
                    "write_latency_ms": summary.write_latency_percentile(latency_percentile),
                    "t_visibility_ms": summary.t_visibility(target_probability),
                    "consistency_at_commit": summary.probability_never_stale(),
                }
            )
    return rows
