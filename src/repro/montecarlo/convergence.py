"""Monte Carlo convergence utilities.

The paper's headline numbers are tail probabilities (99.9% consistency) and
tail latencies (99.9th percentile), so knowing how many trials are needed for
a stable estimate matters.  This module provides Wilson score intervals for
probability estimates and simple sample-size planning helpers.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, sqrt

from scipy import stats

from repro.exceptions import AnalysisError

__all__ = ["ProbabilityEstimate", "wilson_interval", "trials_for_margin"]


@dataclass(frozen=True)
class ProbabilityEstimate:
    """A Monte Carlo probability estimate with a confidence interval."""

    probability: float
    lower: float
    upper: float
    trials: int
    confidence: float

    @property
    def margin(self) -> float:
        """Half-width of the confidence interval."""
        return (self.upper - self.lower) / 2.0

    def contains(self, value: float) -> bool:
        """True when ``value`` lies inside the confidence interval."""
        return self.lower <= value <= self.upper


def wilson_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> ProbabilityEstimate:
    """Wilson score interval for a binomial proportion.

    More accurate than the normal approximation for the extreme probabilities
    (very close to 0 or 1) that dominate PBS analyses.
    """
    if trials <= 0:
        raise AnalysisError(f"trials must be positive, got {trials}")
    if not 0 <= successes <= trials:
        raise AnalysisError(f"successes must be in [0, {trials}], got {successes}")
    if not 0.0 < confidence < 1.0:
        raise AnalysisError(f"confidence must be in (0, 1), got {confidence}")

    z = float(stats.norm.ppf(1.0 - (1.0 - confidence) / 2.0))
    p_hat = successes / trials
    denominator = 1.0 + z**2 / trials
    centre = (p_hat + z**2 / (2 * trials)) / denominator
    half_width = (
        z * sqrt(p_hat * (1.0 - p_hat) / trials + z**2 / (4 * trials**2)) / denominator
    )
    return ProbabilityEstimate(
        probability=p_hat,
        lower=max(0.0, centre - half_width),
        upper=min(1.0, centre + half_width),
        trials=trials,
        confidence=confidence,
    )


def trials_for_margin(
    probability: float, margin: float, confidence: float = 0.95
) -> int:
    """Trials needed so the normal-approximation CI half-width is at most ``margin``.

    Example: estimating a 99.9% consistency probability to ±0.05% at 95%
    confidence requires roughly 15k trials; to ±0.01%, roughly 384k.
    """
    if not 0.0 <= probability <= 1.0:
        raise AnalysisError(f"probability must be in [0, 1], got {probability}")
    if margin <= 0:
        raise AnalysisError(f"margin must be positive, got {margin}")
    if not 0.0 < confidence < 1.0:
        raise AnalysisError(f"confidence must be in (0, 1), got {confidence}")
    z = float(stats.norm.ppf(1.0 - (1.0 - confidence) / 2.0))
    variance = probability * (1.0 - probability)
    if variance == 0.0:
        return 1
    return int(ceil(z**2 * variance / margin**2))
