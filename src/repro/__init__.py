"""Probabilistically Bounded Staleness (PBS) for practical partial quorums.

A reproduction of Bailis et al., *Probabilistically Bounded Staleness for
Practical Partial Quorums* (VLDB 2012).  The package provides:

* ``repro.core`` — PBS k-staleness, monotonic reads, t-visibility,
  ⟨k, t⟩-staleness, the WARS Monte Carlo model, and SLA-driven configuration.
* ``repro.latency`` — latency distributions, the paper's production fits, and
  the percentile-summary fitting procedure.
* ``repro.cluster`` — a discrete-event Dynamo-style replicated key-value store
  used to validate the analytical models.
* ``repro.workloads`` — key, arrival, and operation-mix generators.
* ``repro.montecarlo`` — t-visibility sweeps, latency CDFs, convergence tools.
* ``repro.analysis`` — staleness measurement, statistics, and validation.
* ``repro.experiments`` — one module per table/figure in the paper.
* ``repro.serving`` — an online multi-tenant prediction service: streaming
  ingest, periodic refit, fingerprint-cached analytic answers, and
  asynchronous Monte Carlo audits, exposed over JSON/HTTP.
* ``repro.faults`` — declarative fault plans (gray failures, correlated
  latency bursts) modulating the simulator's network, plus the
  adaptive-recovery closed loop that refits a serving tenant from a hostile
  run's harvested observations.

Quickstart
----------
>>> from repro import PBSPredictor, ReplicaConfig, production_fit
>>> predictor = PBSPredictor(production_fit("LNKD-SSD"), ReplicaConfig(n=3, r=1, w=1))
>>> report = predictor.report(trials=10_000, rng=0)
>>> report.consistency_at_commit > 0.5
True
"""

from repro.core import (
    CASSANDRA_DEFAULT,
    RIAK_DEFAULT,
    ConfigurationEvaluation,
    KStalenessModel,
    KTStalenessModel,
    LoadModel,
    MonotonicReadsModel,
    PBSPredictor,
    PBSReport,
    ReplicaConfig,
    SLAOptimizer,
    SLATarget,
    WARSModel,
    WARSSampleBatch,
    WARSTrialResult,
    iter_configs,
    sample_wars_batch,
)
from repro.exceptions import (
    AnalysisError,
    ConfigurationError,
    DistributionError,
    ExperimentError,
    PBSError,
    ScenarioError,
    SimulationError,
    WorkloadError,
)
from repro.latency import (
    ExponentialLatency,
    LatencyDistribution,
    MixtureDistribution,
    ParetoLatency,
    WARSDistributions,
    lnkd_disk,
    lnkd_ssd,
    production_fit,
    wan,
    ymmr,
)
from repro.analytic import (
    AnalyticConfigResult,
    AnalyticEnvironment,
    AnalyticPredictor,
)
from repro.montecarlo import (
    ConfigSweepResult,
    StreamingHistogram,
    SweepEngine,
    SweepResult,
)
from repro.serving import (
    PredictorService,
    ServedPrediction,
    ServedRecommendation,
    StreamingReservoir,
)
from repro.scenarios import (
    Scenario,
    ScenarioDivergence,
    get_scenario,
    list_scenarios,
    run_scenario,
    scenario_names,
)
from repro.faults import (
    BurstProcess,
    FaultPlan,
    GrayFailure,
    RecoveryTrajectory,
    run_adaptive_recovery,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # Core
    "CASSANDRA_DEFAULT",
    "RIAK_DEFAULT",
    "ConfigurationEvaluation",
    "KStalenessModel",
    "KTStalenessModel",
    "LoadModel",
    "MonotonicReadsModel",
    "PBSPredictor",
    "PBSReport",
    "ReplicaConfig",
    "SLAOptimizer",
    "SLATarget",
    "WARSModel",
    "WARSSampleBatch",
    "WARSTrialResult",
    "iter_configs",
    "sample_wars_batch",
    # Analytic fast path
    "AnalyticConfigResult",
    "AnalyticEnvironment",
    "AnalyticPredictor",
    # Monte Carlo sweep engine
    "ConfigSweepResult",
    "StreamingHistogram",
    "SweepEngine",
    "SweepResult",
    # Serving layer
    "PredictorService",
    "ServedPrediction",
    "ServedRecommendation",
    "StreamingReservoir",
    # Scenario matrix
    "Scenario",
    "ScenarioDivergence",
    "get_scenario",
    "list_scenarios",
    "run_scenario",
    "scenario_names",
    # Fault injection & adaptive recovery
    "BurstProcess",
    "FaultPlan",
    "GrayFailure",
    "RecoveryTrajectory",
    "run_adaptive_recovery",
    # Exceptions
    "AnalysisError",
    "ConfigurationError",
    "DistributionError",
    "ExperimentError",
    "PBSError",
    "ScenarioError",
    "SimulationError",
    "WorkloadError",
    # Latency
    "ExponentialLatency",
    "LatencyDistribution",
    "MixtureDistribution",
    "ParetoLatency",
    "WARSDistributions",
    "lnkd_disk",
    "lnkd_ssd",
    "production_fit",
    "wan",
    "ymmr",
]
