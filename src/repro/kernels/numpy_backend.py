"""Reference NumPy reduction backend for the WARS sampling kernel.

This is the vectorised pipeline :func:`repro.core.wars.sample_wars_batch`
has always run — moved here verbatim so alternative backends have a
bit-for-bit reference to validate against.  Every array operation, dtype,
and sort kind is unchanged; with the default backend the repository's
published numbers are identical to what they were before the backend seam
existed.
"""

from __future__ import annotations

import numpy as np

__all__ = ["NumpyKernelBackend"]


class NumpyKernelBackend:
    """The reference reduction: NumPy sort + stable argsort + prefix minima."""

    name = "numpy"

    def reduce_batch(
        self,
        write_delays: np.ndarray,
        ack_delays: np.ndarray,
        read_delays: np.ndarray,
        response_delays: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        trials = write_delays.shape[0]

        # Sorting the write round trips once exposes the commit latency for
        # every write quorum size w as column w-1.
        write_round_trips = write_delays + ack_delays
        commit_latency_by_w = np.sort(write_round_trips, axis=1)

        # The responder order (ascending R + S) is shared by every read
        # quorum size; the r-th smallest round trip is column r-1 of the
        # sorted matrix.
        read_round_trips = read_delays + response_delays
        responder_order = np.argsort(read_round_trips, axis=1, kind="stable")
        row_index = np.arange(trials)[:, None]
        read_latency_by_r = read_round_trips[row_index, responder_order]

        # Replica i (among the first r responders) returns fresh data iff
        # commit_latency + t + R[i] >= W[i]; a prefix minimum over (W - R) in
        # responder order yields min over the first r responders as column
        # r-1.
        margins = (write_delays - read_delays)[row_index, responder_order]
        freshness_margin_by_r = np.minimum.accumulate(margins, axis=1)

        return commit_latency_by_w, read_latency_by_r, freshness_margin_by_r
