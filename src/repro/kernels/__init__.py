"""Pluggable sampling-reduction kernels for the WARS Monte Carlo hot path.

Every number the reproduction publishes reduces to one kernel: sample the
four WARS delay matrices, sort the write round trips, argsort the read round
trips (the responder order), and take prefix minima of the freshness margins
in that order (:func:`repro.core.wars.sample_wars_batch`).  This package
makes the *reduction* stage of that kernel pluggable:

* the ``numpy`` backend is the reference implementation — the vectorised
  sort/argsort/gather/prefix-min pipeline the repository has always run, and
  the default everywhere, so results stay bit-for-bit unchanged unless a
  caller opts in to another backend;
* the ``numba`` backend fuses the per-trial sort, responder argsort, and
  prefix-min reduction into a single ``prange``-parallel JIT kernel
  (:mod:`repro.kernels.numba_backend`), validated *statistically* against
  the reference (tie-breaking inside a trial's sort may differ, so the
  contract is distribution equivalence, not bitwise equality — see
  ``tests/montecarlo/test_kernels.py``).

Distribution sampling stays in NumPy for every backend: the delay matrices
are drawn once per chunk by the shared front half of ``sample_wars_batch``,
so all backends consume identical random streams and differ only in how the
order statistics are reduced.

Selection
---------
Backends are chosen by name through the ``kernel_backend=`` knob threaded
from the CLI down to :class:`repro.montecarlo.engine.SweepEngine`:

* ``None`` / ``"numpy"`` — the reference backend (default);
* ``"numba"`` — the JIT backend; falls back to ``numpy`` with a warning when
  numba is not installed (the container may not ship it);
* ``"auto"`` — the fastest available backend (``numba`` when importable,
  else ``numpy``).

Unknown names raise :class:`repro.exceptions.KernelError` listing the
registered backends.

Process/thread composition
--------------------------
The JIT kernel parallelises *within* a process while the sweep engine shards
chunks *across* processes; run naively together they oversubscribe every
core.  :func:`pin_worker_threads` — called from the engine's worker-pool
initializer — pins each worker's BLAS/OpenMP/numba thread pools to its fair
share of the machine so the two levels of parallelism compose.
"""

from __future__ import annotations

import os
from typing import Callable, Protocol

import numpy as np

from repro.exceptions import KernelError

__all__ = [
    "KernelBackend",
    "register_backend",
    "registered_backends",
    "available_backends",
    "resolve_backend",
    "is_registry_instance",
    "jit_has_run",
    "note_jit_ran",
    "pin_worker_threads",
]


class KernelBackend(Protocol):
    """The reduction stage of the WARS sampling kernel.

    A backend receives the four freshly sampled delay matrices — all of
    shape ``(trials, n)`` — and returns the three pre-reduced order-statistic
    matrices :class:`repro.core.wars.WARSSampleBatch` stores:

    ``commit_latency_by_w``
        Per-trial write round trips ``W + A`` sorted ascending along axis 1.
    ``read_latency_by_r``
        Per-trial read round trips ``R + S`` in responder (ascending) order.
    ``freshness_margin_by_r``
        Prefix minima of ``W - R`` in responder order along axis 1.
    """

    name: str

    def reduce_batch(
        self,
        write_delays: np.ndarray,
        ack_delays: np.ndarray,
        read_delays: np.ndarray,
        response_delays: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Reduce the sampled delay matrices to the batch's order statistics."""
        ...  # pragma: no cover - protocol


#: name -> zero-argument factory returning a backend instance, or ``None``
#: when the backend's runtime dependency is missing on this machine.
_REGISTRY: dict[str, Callable[[], "KernelBackend | None"]] = {}

#: Resolved backend instances, one per name (JIT state is per-process and
#: compilation is expensive, so backends are singletons).
_INSTANCES: dict[str, KernelBackend] = {}


def register_backend(
    name: str, factory: Callable[[], "KernelBackend | None"]
) -> None:
    """Register a backend factory under a stable name.

    The factory runs at resolution time and may return ``None`` to signal
    that the backend cannot run on this machine (missing optional
    dependency); registration itself is unconditional so the name always
    appears in :func:`registered_backends` and test parametrisations.
    """
    if name in _REGISTRY:
        raise KernelError(f"kernel backend {name!r} is already registered")
    _REGISTRY[name] = factory


def registered_backends() -> tuple[str, ...]:
    """All registered backend names, importable or not, in registration order."""
    return tuple(_REGISTRY)


def available_backends() -> tuple[str, ...]:
    """The registered backends that can actually run on this machine."""
    return tuple(name for name in _REGISTRY if _instantiate(name) is not None)


def _instantiate(name: str) -> KernelBackend | None:
    if name not in _INSTANCES:
        backend = _REGISTRY[name]()
        if backend is None:
            return None
        _INSTANCES[name] = backend
    return _INSTANCES[name]


def resolve_backend(
    spec: "str | KernelBackend | None" = None,
) -> KernelBackend:
    """Resolve a backend name (or pass an instance through) to an instance.

    ``None`` and ``"numpy"`` return the reference backend.  ``"auto"``
    returns the fastest available backend.  Requesting ``"numba"`` on a
    machine without numba falls back to the reference backend with a
    :class:`RuntimeWarning` — an explicit request for speed should not turn
    into a crash on a box that lacks the optional dependency.  Unknown names
    raise :class:`~repro.exceptions.KernelError`.
    """
    if spec is None:
        spec = "numpy"
    if not isinstance(spec, str):
        return spec
    if spec == "auto":
        for name in reversed(tuple(_REGISTRY)):  # prefer later, faster registrations
            backend = _instantiate(name)
            if backend is not None:
                return backend
        raise KernelError("no kernel backend is available")  # pragma: no cover
    if spec not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY) + ["auto"])
        raise KernelError(
            f"unknown kernel backend {spec!r}; registered backends: {known}"
        )
    backend = _instantiate(spec)
    if backend is None:
        import warnings

        warnings.warn(
            f"kernel backend {spec!r} is not available on this machine "
            "(optional dependency missing); falling back to the 'numpy' "
            "reference backend",
            RuntimeWarning,
            stacklevel=2,
        )
        fallback = _instantiate("numpy")
        assert fallback is not None
        return fallback
    return backend


def is_registry_instance(backend: KernelBackend) -> bool:
    """True when ``backend`` is the registry's own singleton for its name.

    The sweep engine's worker processes reconstruct backends by *name*, so
    sharding is only sound for instances the registry itself produced: an
    ad-hoc instance — even one shadowing a registered name — would silently
    be replaced by the builtin implementation in every worker chunk while
    the coordinator's inline chunk used the custom one.
    """
    return _INSTANCES.get(getattr(backend, "name", "")) is backend


#: True once a (parallel) JIT kernel has executed in this process.  Consulted
#: by the sweep engine's pool-context choice: numba's threading layers are
#: not fork-safe, so once a JIT kernel has run — under *any* engine instance
#: — forking workers is off the table for the rest of the process.
_JIT_HAS_RUN: bool = False


def note_jit_ran() -> None:
    """Record that a JIT kernel executed in this process (see :func:`jit_has_run`)."""
    global _JIT_HAS_RUN
    _JIT_HAS_RUN = True


def jit_has_run() -> bool:
    """True once any JIT kernel has executed in this process."""
    return _JIT_HAS_RUN


#: Environment variables the common BLAS/OpenMP runtimes consult for their
#: pool sizes.  Set before the pools first spin up (spawn-start workers, or
#: fork-start workers whose parent never ran a threaded region), they cap
#: per-process threading at the worker's fair share of the machine.
_THREAD_ENV_VARS: tuple[str, ...] = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
    "NUMEXPR_NUM_THREADS",
)


def pin_worker_threads(workers: int, cpu_count: int | None = None) -> int:
    """Pin this process's kernel-level thread pools to its fair core share.

    Called from the sweep engine's worker-pool initializer so that
    process-level sharding (``workers`` processes) and kernel-level
    parallelism (the numba backend's ``prange``, BLAS threads) compose
    instead of oversubscribing: each of ``workers`` processes gets
    ``max(1, cpu_count // workers)`` threads.

    Best-effort by design: environment variables only bind pools that have
    not started yet, so already-initialised runtimes are additionally capped
    through their APIs where one exists (``numba.set_num_threads``,
    ``threadpoolctl`` when installed).  Returns the per-process thread count.
    """
    if workers < 1:
        raise KernelError(f"worker count must be >= 1, got {workers}")
    total = cpu_count if cpu_count is not None else (os.cpu_count() or 1)
    threads = max(1, total // max(workers, 1))
    for variable in _THREAD_ENV_VARS:
        os.environ[variable] = str(threads)
    try:  # already-loaded BLAS pools ignore the env; cap them via their API.
        from threadpoolctl import threadpool_limits

        threadpool_limits(limits=threads)
    except ImportError:
        pass
    try:
        import numba

        numba.set_num_threads(max(1, min(threads, numba.get_num_threads())))
    except ImportError:
        pass
    return threads


def _register_builtin_backends() -> None:
    from repro.kernels.numba_backend import make_numba_backend
    from repro.kernels.numpy_backend import NumpyKernelBackend

    register_backend("numpy", NumpyKernelBackend)
    register_backend("numba", make_numba_backend)


_register_builtin_backends()
