"""Fused numba JIT reduction backend for the WARS sampling kernel.

The reference backend makes three full passes over the ``(trials, n)``
matrices — a row-wise sort, a row-wise stable argsort plus two fancy-indexed
gathers, and a prefix-minimum scan — each materialising intermediates the
size of the batch.  This backend fuses all of it into one ``prange``-parallel
loop over trials: each trial's row (a handful of floats; ``n`` is a
replication factor, almost always <= 10) is reduced entirely in registers /
L1, and the only arrays ever written are the three outputs.

Equivalence contract
--------------------
The fused kernel consumes the *same* sampled delay matrices as the reference
(distribution sampling is shared NumPy code in
:func:`repro.core.wars.sample_wars_batch`), so the two backends differ only
in floating-point-identical reductions of identical inputs — except for
tie-breaking between equal round trips, where the insertion sort used here
and NumPy's stable argsort agree on order for exact ties but the surrounding
sorts may differ in unstable positions.  Continuous latency distributions
make ties measure-zero, so the repository validates this backend
*statistically* against the reference (the ROADMAP's stated contract for
non-seeded backends); see ``tests/montecarlo/test_kernels.py``.

The module imports cleanly without numba installed:
:func:`make_numba_backend` returns ``None`` and the registry treats the
backend as unavailable (``kernel_backend="numba"`` then falls back to the
reference with a warning).
"""

from __future__ import annotations

import numpy as np

__all__ = ["numba_available", "make_numba_backend", "NumbaKernelBackend"]


def numba_available() -> bool:
    """True when the numba runtime can be imported."""
    try:
        import numba  # noqa: F401
    except ImportError:
        return False
    return True


def _compile_fused_reduce():
    """Build the JIT kernel (deferred so import never requires numba)."""
    from numba import njit, prange

    @njit(parallel=True, cache=True, fastmath=False)
    def fused_reduce(write_delays, ack_delays, read_delays, response_delays):
        trials, n = write_delays.shape
        commit_latency_by_w = np.empty((trials, n), dtype=np.float64)
        read_latency_by_r = np.empty((trials, n), dtype=np.float64)
        freshness_margin_by_r = np.empty((trials, n), dtype=np.float64)
        for i in prange(trials):
            # Stable insertion argsort of the read round trips: n is a
            # replication factor (single digits), where insertion sort beats
            # any general-purpose sort and — crucially for the freshness
            # margins — preserves the original index order of exact ties,
            # matching the reference backend's kind="stable" argsort.
            order = np.empty(n, dtype=np.int64)
            read_rt = np.empty(n, dtype=np.float64)
            for j in range(n):
                read_rt[j] = read_delays[i, j] + response_delays[i, j]
                order[j] = j
            for j in range(1, n):
                key = read_rt[j]
                key_index = order[j]
                k = j - 1
                while k >= 0 and read_rt[k] > key:
                    read_rt[k + 1] = read_rt[k]
                    order[k + 1] = order[k]
                    k -= 1
                read_rt[k + 1] = key
                order[k + 1] = key_index
            # read_rt is now sorted ascending = read latency by quorum size;
            # fuse the (W - R) gather and prefix minimum into the same pass.
            running = np.inf
            for r in range(n):
                j = order[r]
                read_latency_by_r[i, r] = read_rt[r]
                delta = write_delays[i, j] - read_delays[i, j]
                if delta < running:
                    running = delta
                freshness_margin_by_r[i, r] = running
            # Insertion sort of the write round trips (values only).
            write_rt = np.empty(n, dtype=np.float64)
            for j in range(n):
                write_rt[j] = write_delays[i, j] + ack_delays[i, j]
            for j in range(1, n):
                key = write_rt[j]
                k = j - 1
                while k >= 0 and write_rt[k] > key:
                    write_rt[k + 1] = write_rt[k]
                    k -= 1
                write_rt[k + 1] = key
            for j in range(n):
                commit_latency_by_w[i, j] = write_rt[j]
        return commit_latency_by_w, read_latency_by_r, freshness_margin_by_r

    return fused_reduce


class NumbaKernelBackend:
    """One ``prange``-parallel pass fusing sort + argsort + prefix-min.

    Compilation is deferred to the first :meth:`reduce_batch` call and cached
    by numba (``cache=True``), so constructing the backend is cheap and a
    process only pays the JIT cost once.
    """

    name = "numba"

    def __init__(self) -> None:
        self._fused = None

    def reduce_batch(
        self,
        write_delays: np.ndarray,
        ack_delays: np.ndarray,
        read_delays: np.ndarray,
        response_delays: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        if self._fused is None:
            self._fused = _compile_fused_reduce()
        # Record that a parallel JIT kernel ran: numba's threading layers are
        # not fork-safe, and the engine consults this before forking workers.
        from repro.kernels import note_jit_ran

        note_jit_ran()
        # The sampling front half can hand over non-contiguous views (the
        # per-replica permutation path); the JIT kernel wants plain C-order
        # float64.
        return self._fused(
            np.ascontiguousarray(write_delays, dtype=np.float64),
            np.ascontiguousarray(ack_delays, dtype=np.float64),
            np.ascontiguousarray(read_delays, dtype=np.float64),
            np.ascontiguousarray(response_delays, dtype=np.float64),
        )


def make_numba_backend() -> "NumbaKernelBackend | None":
    """Registry factory: an instance when numba is importable, else ``None``."""
    if not numba_available():
        return None
    return NumbaKernelBackend()
