"""Quorum-system load and capacity bounds under staleness tolerance (paper §3.3).

The *load* of a quorum system (Naor & Wool) is the access frequency of its
busiest member under the best possible access strategy; *capacity* is the
reciprocal.  Malkhi et al. show an ε-intersecting probabilistic quorum system
has load at least ``(1 - sqrt(ε)) / sqrt(N)``... the paper's §3.3 observes that
tolerating ``k`` versions of staleness only requires each of the ``k``
constituent systems to be ``ε = p^(1/k)``-intersecting, giving the improved
lower bound::

    load >= (1 - p)^(1 / (2k)) / sqrt(N)

(with ``p`` the tolerated probability of inconsistency), and analogously for
monotonic reads with ``C = 1 + γ_gw / γ_cr`` in place of ``k``.  Staleness
tolerance therefore *lowers* the required load and raises capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import sqrt
from typing import Iterable

from repro.exceptions import ConfigurationError

__all__ = [
    "epsilon_intersecting_load",
    "k_staleness_load",
    "monotonic_reads_load",
    "capacity_from_load",
    "LoadModel",
]


def _validate_probability(value: float, name: str) -> None:
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1], got {value}")


def _validate_n(n: int) -> None:
    if n < 1:
        raise ConfigurationError(f"replica count must be >= 1, got {n}")


def epsilon_intersecting_load(n: int, epsilon: float) -> float:
    """Malkhi et al. lower bound on the load of an ε-intersecting quorum system.

    ``load >= (1 - sqrt(ε)) / sqrt(N)``.
    """
    _validate_n(n)
    _validate_probability(epsilon, "epsilon")
    return (1.0 - sqrt(epsilon)) / sqrt(n)


def k_staleness_load(n: int, p: float, k: int) -> float:
    """§3.3 lower bound on load when tolerating staleness of ``k`` versions.

    ``load >= (1 - p)^(1/(2k)) / sqrt(N)`` where ``p`` is the tolerated
    probability of inconsistency.  Equivalent to
    :func:`epsilon_intersecting_load` with ``ε = p^(1/k)``.
    """
    _validate_n(n)
    _validate_probability(p, "inconsistency probability")
    if k < 1:
        raise ConfigurationError(f"version tolerance k must be >= 1, got {k}")
    return (1.0 - p) ** (1.0 / (2.0 * k)) / sqrt(n)


def monotonic_reads_load(n: int, p: float, global_write_rate: float, client_read_rate: float) -> float:
    """§3.3 load lower bound for PBS monotonic reads: exponent ``C = 1 + γ_gw/γ_cr``."""
    if global_write_rate < 0:
        raise ConfigurationError(f"global write rate must be non-negative, got {global_write_rate}")
    if client_read_rate <= 0:
        raise ConfigurationError(f"client read rate must be positive, got {client_read_rate}")
    _validate_n(n)
    _validate_probability(p, "inconsistency probability")
    c = 1.0 + global_write_rate / client_read_rate
    return (1.0 - p) ** (1.0 / (2.0 * c)) / sqrt(n)


def capacity_from_load(load: float) -> float:
    """Capacity is the reciprocal of load (Naor & Wool, Corollary 3.9)."""
    if load <= 0:
        raise ConfigurationError(f"load must be positive to define capacity, got {load}")
    return 1.0 / load


@dataclass(frozen=True)
class LoadModel:
    """Load/capacity comparisons for a replica count and inconsistency tolerance."""

    n: int
    p: float

    def __post_init__(self) -> None:
        _validate_n(self.n)
        _validate_probability(self.p, "inconsistency probability")

    def strict_load(self) -> float:
        """Load bound with no staleness tolerance (ε-intersecting with ε = p)."""
        return epsilon_intersecting_load(self.n, self.p)

    def staleness_tolerant_load(self, k: int) -> float:
        """Load bound when tolerating ``k`` versions of staleness."""
        return k_staleness_load(self.n, self.p, k)

    def load_curve(self, ks: Iterable[int]) -> list[tuple[int, float]]:
        """Return ``(k, load_bound)`` pairs showing load shrinking with k."""
        return [(k, self.staleness_tolerant_load(k)) for k in ks]

    def capacity_improvement(self, k: int) -> float:
        """Ratio of k-tolerant capacity to 1-version capacity (>= 1)."""
        return self.staleness_tolerant_load(1) / self.staleness_tolerant_load(k)
