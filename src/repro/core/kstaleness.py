"""PBS k-staleness: closed-form staleness bounds across versions (paper §3.1).

For non-expanding probabilistic quorums where the read and write quorums are
chosen uniformly at random, the probability that a read quorum misses the most
recent write is (Equation 1)::

    p_s = C(N - W, R) / C(N, R)

and the probability of missing *all* of the last ``k`` independent writes is
``p_s ** k`` (Equation 2).  A read therefore returns a value within ``k``
versions of the latest committed version with probability ``1 - p_s ** k``.

These closed forms are exact for fixed (non-expanding) quorums and are upper
bounds on staleness for expanding partial quorums (Dynamo-style systems with
anti-entropy).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import comb
from typing import Iterable, Sequence

from repro.core.quorum import ReplicaConfig
from repro.exceptions import ConfigurationError

__all__ = [
    "probability_nonintersection",
    "staleness_probability",
    "consistency_probability",
    "k_for_target_probability",
    "KStalenessModel",
]


def probability_nonintersection(config: ReplicaConfig) -> float:
    """Equation 1: probability a random read quorum misses a random write quorum.

    Counts the read quorums drawn entirely from the ``N - W`` replicas outside
    the write quorum, over all possible read quorums.  Strict quorums
    (``R + W > N``) give exactly zero.
    """
    if config.r + config.w > config.n:
        return 0.0
    return comb(config.n - config.w, config.r) / comb(config.n, config.r)


def staleness_probability(config: ReplicaConfig, k: int) -> float:
    """Equation 2: probability a read misses all of the last ``k`` committed versions."""
    if k < 1:
        raise ConfigurationError(f"version tolerance k must be >= 1, got {k}")
    return probability_nonintersection(config) ** k


def consistency_probability(config: ReplicaConfig, k: int = 1) -> float:
    """Probability that a read returns a value within ``k`` versions of the latest.

    ``k = 1`` is the classic probabilistic-quorum consistency probability.
    """
    return 1.0 - staleness_probability(config, k)


def k_for_target_probability(config: ReplicaConfig, target: float) -> int:
    """Smallest ``k`` such that the read is within ``k`` versions with probability >= target.

    Raises :class:`ConfigurationError` if the target is unreachable (only
    possible when ``p_s == 1``, i.e. read and write quorums can never
    intersect, which cannot happen for valid configurations with R, W >= 1).
    """
    if not 0.0 <= target < 1.0 and target != 1.0:
        raise ConfigurationError(f"target probability must be in [0, 1], got {target}")
    p_s = probability_nonintersection(config)
    if p_s == 0.0:
        return 1
    if target == 1.0:
        raise ConfigurationError(
            "a partial quorum cannot guarantee consistency with probability exactly 1"
        )
    k = 1
    probability = 1.0 - p_s
    while probability < target:
        k += 1
        probability = 1.0 - p_s**k
        if k > 10_000_000:  # pragma: no cover - defensive guard
            raise ConfigurationError("target probability requires an implausibly large k")
    return k


@dataclass(frozen=True)
class KStalenessModel:
    """Convenience wrapper bundling the closed-form k-staleness results for a config.

    This mirrors the way the paper presents §3.1: one replication
    configuration, evaluated across a range of ``k`` values.
    """

    config: ReplicaConfig

    @property
    def p_nonintersection(self) -> float:
        """Equation 1 for this configuration."""
        return probability_nonintersection(self.config)

    def staleness(self, k: int) -> float:
        """Equation 2: probability of reading data more than ``k`` versions stale."""
        return staleness_probability(self.config, k)

    def consistency(self, k: int = 1) -> float:
        """Probability of reading data within ``k`` versions of the latest."""
        return consistency_probability(self.config, k)

    def consistency_curve(self, ks: Iterable[int]) -> list[tuple[int, float]]:
        """Return ``(k, P(within k versions))`` pairs for plotting or tables."""
        return [(k, self.consistency(k)) for k in ks]

    def expected_staleness_versions(self) -> float:
        """Expected number of versions by which a read lags the latest commit.

        The read is stale by at least ``k`` versions with probability
        ``p_s ** k``, so the expectation of the (geometric-tailed) staleness is
        ``sum_{k>=1} p_s^k = p_s / (1 - p_s)``.
        """
        p_s = self.p_nonintersection
        if p_s >= 1.0:  # pragma: no cover - unreachable for valid configs
            return float("inf")
        return p_s / (1.0 - p_s)

    def table(self, ks: Sequence[int] = (1, 2, 3, 5, 10)) -> list[dict[str, float]]:
        """Rows matching the §3.1 in-text examples: k vs probability of freshness."""
        return [
            {"k": float(k), "p_consistent": self.consistency(k), "p_stale": self.staleness(k)}
            for k in ks
        ]
