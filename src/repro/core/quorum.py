"""Replica/quorum configuration value objects.

Throughout the paper (and in Dynamo-style stores), a key's replication is
described by three integers: ``N`` (replication factor), ``R`` (read quorum
size: replica responses required before a read returns), and ``W`` (write
quorum size: acknowledgements required before a write commits).

:class:`ReplicaConfig` is the immutable value object used across the library.
It validates configurations, classifies them as strict (``R + W > N``) or
partial, and exposes the common textbook variants (majority quorums, the
Cassandra / Riak defaults surveyed in §2.3 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Iterator

from repro.exceptions import ConfigurationError

__all__ = ["ReplicaConfig", "iter_configs", "CASSANDRA_DEFAULT", "RIAK_DEFAULT"]


@dataclass(frozen=True, order=True)
class ReplicaConfig:
    """An (N, R, W) replication configuration for a single quorum system.

    Attributes
    ----------
    n:
        Replication factor — the number of replicas holding each key.
    r:
        Read quorum size — replica responses required before a read returns.
    w:
        Write quorum size — replica acknowledgements required before a write
        is considered committed.
    """

    n: int
    r: int
    w: int

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ConfigurationError(f"replication factor N must be >= 1, got {self.n}")
        if not 1 <= self.r <= self.n:
            raise ConfigurationError(
                f"read quorum R must satisfy 1 <= R <= N ({self.n}), got {self.r}"
            )
        if not 1 <= self.w <= self.n:
            raise ConfigurationError(
                f"write quorum W must satisfy 1 <= W <= N ({self.n}), got {self.w}"
            )

    # ------------------------------------------------------------------
    # Classification helpers.
    # ------------------------------------------------------------------
    @property
    def is_strict(self) -> bool:
        """True when read and write quorums must intersect (``R + W > N``)."""
        return self.r + self.w > self.n

    @property
    def is_partial(self) -> bool:
        """True for partial (non-strict) quorums (``R + W <= N``)."""
        return not self.is_strict

    @property
    def tolerates_concurrent_writes(self) -> bool:
        """True when ``W > N/2``, so two concurrent writes cannot both commit
        to disjoint majorities (paper §2.2)."""
        return 2 * self.w > self.n

    @property
    def read_fault_tolerance(self) -> int:
        """Number of replica failures a read can tolerate and still form a quorum."""
        return self.n - self.r

    @property
    def write_fault_tolerance(self) -> int:
        """Number of replica failures a write can tolerate and still commit."""
        return self.n - self.w

    # ------------------------------------------------------------------
    # Constructors for the configurations surveyed in §2.3.
    # ------------------------------------------------------------------
    @classmethod
    def majority(cls, n: int) -> "ReplicaConfig":
        """Majority quorum: R = W = ceil((N + 1) / 2), always strict."""
        quorum = n // 2 + 1
        return cls(n=n, r=quorum, w=quorum)

    @classmethod
    def one_one(cls, n: int = 3) -> "ReplicaConfig":
        """R = W = 1 — the "maximum performance" partial quorum (Cassandra default)."""
        return cls(n=n, r=1, w=1)

    def with_r(self, r: int) -> "ReplicaConfig":
        """Return a copy with a different read quorum size."""
        return ReplicaConfig(n=self.n, r=r, w=self.w)

    def with_w(self, w: int) -> "ReplicaConfig":
        """Return a copy with a different write quorum size."""
        return ReplicaConfig(n=self.n, r=self.r, w=w)

    def with_n(self, n: int) -> "ReplicaConfig":
        """Return a copy with a different replication factor (R, W unchanged)."""
        return ReplicaConfig(n=n, r=self.r, w=self.w)

    def label(self) -> str:
        """Short label used in tables and figures, e.g. ``N=3 R=1 W=2``."""
        return f"N={self.n} R={self.r} W={self.w}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.label()


def iter_configs(n: int, include_strict: bool = True) -> Iterator[ReplicaConfig]:
    """Iterate over every (R, W) configuration for replication factor ``n``.

    The paper's SLA search space (§6) is exactly this ``O(N^2)`` set.  Set
    ``include_strict=False`` to iterate only over partial quorums.
    """
    if n < 1:
        raise ConfigurationError(f"replication factor N must be >= 1, got {n}")
    for r, w in product(range(1, n + 1), repeat=2):
        config = ReplicaConfig(n=n, r=r, w=w)
        if include_strict or config.is_partial:
            yield config


#: Cassandra 1.0 default configuration (§2.3): N=3, R=W=1.
CASSANDRA_DEFAULT = ReplicaConfig(n=3, r=1, w=1)

#: Riak default configuration (§2.3): N=3, R=W=2.
RIAK_DEFAULT = ReplicaConfig(n=3, r=2, w=2)
