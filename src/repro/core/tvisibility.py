"""PBS t-visibility for expanding partial quorums (paper §3.4).

Real Dynamo-style quorums *expand*: the coordinator sends every write to all
``N`` replicas and considers the write committed after ``W`` acknowledgements,
but the remaining replicas continue to receive the write afterwards
(anti-entropy).  t-visibility asks: what is the probability that a read
starting ``t`` seconds after a write commits observes that write?

Equation 4 of the paper gives a closed-form *upper bound* on the probability
of staleness in terms of the write-propagation CDF ``P_w(c, t)`` — the
probability that at least ``c`` replicas hold the version ``t`` seconds after
commit::

    p_st = C(N-W, R)/C(N, R)
           + Σ_{c in (W, N]} C(N-c, R)/C(N, R) · [P_w(c+1, t) − P_w(c, t)]

This module implements that bound for an arbitrary propagation model.  The
:class:`WritePropagationModel` interface is satisfied both by simple analytic
models (e.g. exponential per-replica propagation) and by empirical propagation
curves measured from the cluster simulator.

Note the paper's convention: ``P_w(c, t)`` is the probability that *at least*
``c`` replicas have the version at time ``t``; by definition ``P_w(c, 0) = 1``
for all ``c <= W``.  The term ``P_w(c+1, t) − P_w(c, t)`` is therefore
negative as written in the paper; we implement the equivalent (and clearly
non-negative) formulation using the probability that *exactly* ``c`` replicas
hold the version.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from math import comb, exp
from typing import Sequence

import numpy as np

from repro.core.quorum import ReplicaConfig
from repro.exceptions import ConfigurationError

__all__ = [
    "WritePropagationModel",
    "ExponentialPropagation",
    "EmpiricalPropagation",
    "InstantaneousPropagation",
    "staleness_upper_bound",
    "visibility_lower_bound",
]


class WritePropagationModel(abc.ABC):
    """Distribution of the number of replicas holding a version ``t`` ms after commit."""

    @abc.abstractmethod
    def replica_count_pmf(self, config: ReplicaConfig, t_ms: float) -> np.ndarray:
        """Return an array ``pmf`` of length ``N + 1`` where ``pmf[c]`` is the
        probability that exactly ``c`` replicas hold the version ``t_ms``
        milliseconds after the write commits.

        Implementations must guarantee ``pmf[c] == 0`` for ``c < W`` (the write
        quorum already holds the version at commit time) and the entries must
        sum to 1.
        """

    def cumulative(self, config: ReplicaConfig, t_ms: float) -> np.ndarray:
        """Return ``P_w(c, t)``: probability at least ``c`` replicas hold the version."""
        pmf = self.replica_count_pmf(config, t_ms)
        # Reverse cumulative sum: P(at least c) = sum_{j >= c} pmf[j].
        return np.cumsum(pmf[::-1])[::-1]


@dataclass(frozen=True)
class InstantaneousPropagation(WritePropagationModel):
    """No anti-entropy at all: exactly the ``W`` quorum replicas ever hold the version.

    This reduces Equation 4 to Equation 1 and is used to cross-check the two
    closed forms against each other.
    """

    def replica_count_pmf(self, config: ReplicaConfig, t_ms: float) -> np.ndarray:
        pmf = np.zeros(config.n + 1)
        pmf[config.w] = 1.0
        return pmf


@dataclass(frozen=True)
class ExponentialPropagation(WritePropagationModel):
    """Each non-quorum replica independently receives the write after an Exp(rate) delay.

    A simple analytic stand-in for anti-entropy: after ``t`` ms, each of the
    ``N - W`` replicas outside the original write quorum has received the
    version independently with probability ``1 - exp(-rate * t)``.
    """

    rate_per_ms: float

    def __post_init__(self) -> None:
        if self.rate_per_ms <= 0:
            raise ConfigurationError(
                f"propagation rate must be positive, got {self.rate_per_ms}"
            )

    def replica_count_pmf(self, config: ReplicaConfig, t_ms: float) -> np.ndarray:
        if t_ms < 0:
            raise ConfigurationError(f"time since commit must be non-negative, got {t_ms}")
        n, w = config.n, config.w
        p_received = 1.0 - exp(-self.rate_per_ms * t_ms)
        pmf = np.zeros(n + 1)
        remaining = n - w
        for extra in range(remaining + 1):
            pmf[w + extra] = (
                comb(remaining, extra)
                * p_received**extra
                * (1.0 - p_received) ** (remaining - extra)
            )
        return pmf


@dataclass(frozen=True)
class EmpiricalPropagation(WritePropagationModel):
    """Propagation model backed by measured per-replica arrival delays.

    ``arrival_delays_ms`` holds, for each observed write, the sorted one-way
    delays (relative to commit time) at which each replica received the write;
    negative values mean the replica already had the version at commit.  This
    is exactly what the cluster simulator's tracing produces.
    """

    arrival_delays_ms: np.ndarray  # shape (writes, N)

    def __post_init__(self) -> None:
        delays = np.asarray(self.arrival_delays_ms, dtype=float)
        if delays.ndim != 2 or delays.size == 0:
            raise ConfigurationError("arrival delays must form a non-empty (writes, N) matrix")
        object.__setattr__(self, "arrival_delays_ms", delays)

    def replica_count_pmf(self, config: ReplicaConfig, t_ms: float) -> np.ndarray:
        delays = self.arrival_delays_ms
        if delays.shape[1] != config.n:
            raise ConfigurationError(
                f"arrival-delay matrix has {delays.shape[1]} replicas but config.n={config.n}"
            )
        counts = np.sum(delays <= t_ms, axis=1)
        counts = np.clip(counts, config.w, config.n)
        pmf = np.bincount(counts, minlength=config.n + 1).astype(float)
        return pmf / pmf.sum()


def staleness_upper_bound(
    config: ReplicaConfig, propagation: WritePropagationModel, t_ms: float
) -> float:
    """Equation 4: upper bound on the probability a read at time ``t`` is stale.

    The read quorum of size ``R`` is chosen uniformly at random; if ``c``
    replicas hold the version, the read misses it with probability
    ``C(N - c, R) / C(N, R)``.  Summing over the propagation distribution of
    ``c`` yields the bound.
    """
    if t_ms < 0:
        raise ConfigurationError(f"time since commit must be non-negative, got {t_ms}")
    n, r = config.n, config.r
    pmf = propagation.replica_count_pmf(config, t_ms)
    if len(pmf) != n + 1:
        raise ConfigurationError(
            f"propagation pmf has length {len(pmf)}, expected N + 1 = {n + 1}"
        )
    total = float(np.sum(pmf))
    if not np.isclose(total, 1.0, atol=1e-9):
        raise ConfigurationError(f"propagation pmf must sum to 1, got {total}")
    denominator = comb(n, r)
    probability = 0.0
    for c in range(config.w, n + 1):
        if pmf[c] == 0.0:
            continue
        misses = comb(n - c, r) if n - c >= r else 0
        probability += pmf[c] * misses / denominator
    return float(min(max(probability, 0.0), 1.0))


def visibility_lower_bound(
    config: ReplicaConfig, propagation: WritePropagationModel, t_ms: float
) -> float:
    """Lower bound on the probability of a consistent read ``t`` ms after commit."""
    return 1.0 - staleness_upper_bound(config, propagation, t_ms)


def visibility_curve(
    config: ReplicaConfig,
    propagation: WritePropagationModel,
    times_ms: Sequence[float],
) -> list[tuple[float, float]]:
    """Evaluate the visibility lower bound over a grid of times since commit."""
    return [(float(t), visibility_lower_bound(config, propagation, t)) for t in times_ms]


__all__.append("visibility_curve")
