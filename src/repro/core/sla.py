"""SLA-driven replication configuration (paper §6, "Latency/Staleness SLAs").

The paper observes that PBS turns replication tuning into a small optimisation
problem: the configuration space is only ``O(N^2)`` per replication factor, so
an operator can exhaustively evaluate every (N, R, W) choice against measured
latency distributions and pick the one that best satisfies a service level
agreement combining

* an operation-latency target (e.g. "99.9th percentile read latency <= 10 ms"),
* a staleness target (e.g. "99.9% of reads consistent within 20 ms of commit"),
* a minimum durability / availability requirement (a floor on ``W`` and ``N``).

:class:`SLAOptimizer` implements that search over WARS Monte Carlo evaluations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.core.quorum import ReplicaConfig, iter_configs
from repro.exceptions import ConfigurationError
from repro.latency.production import WARSDistributions

__all__ = ["SLATarget", "ConfigurationEvaluation", "SLAOptimizer"]


@dataclass(frozen=True)
class SLATarget:
    """A combined latency/staleness/durability service-level target.

    Attributes
    ----------
    read_latency_ms / write_latency_ms:
        Upper bounds on operation latency at ``latency_percentile``.  ``None``
        disables the corresponding constraint.
    latency_percentile:
        Percentile at which the latency bounds apply (the paper uses 99.9).
    t_visibility_ms:
        Upper bound on the time after commit needed to reach
        ``consistency_probability`` probability of consistent reads.  ``None``
        disables the staleness constraint.
    consistency_probability:
        The probability level for the staleness constraint (default 99.9%).
    min_write_quorum:
        Durability floor: the minimum acceptable ``W``.
    min_replication:
        Availability floor: the minimum acceptable ``N``.
    """

    read_latency_ms: float | None = None
    write_latency_ms: float | None = None
    latency_percentile: float = 99.9
    t_visibility_ms: float | None = None
    consistency_probability: float = 0.999
    min_write_quorum: int = 1
    min_replication: int = 1

    def __post_init__(self) -> None:
        if not 0.0 < self.latency_percentile <= 100.0:
            raise ConfigurationError(
                f"latency percentile must be in (0, 100], got {self.latency_percentile}"
            )
        if not 0.0 < self.consistency_probability <= 1.0:
            raise ConfigurationError(
                "consistency probability must be in (0, 1], got "
                f"{self.consistency_probability}"
            )
        if self.min_write_quorum < 1:
            raise ConfigurationError(
                f"minimum write quorum must be >= 1, got {self.min_write_quorum}"
            )
        if self.min_replication < 1:
            raise ConfigurationError(
                f"minimum replication must be >= 1, got {self.min_replication}"
            )


@dataclass(frozen=True)
class ConfigurationEvaluation:
    """The measured behaviour of one (N, R, W) configuration under a workload."""

    config: ReplicaConfig
    read_latency_ms: float
    write_latency_ms: float
    t_visibility_ms: float
    consistency_at_commit: float
    meets_target: bool
    violations: tuple[str, ...] = field(default_factory=tuple)

    @property
    def combined_latency_ms(self) -> float:
        """Read + write tail latency; the paper's headline trade-off metric."""
        return self.read_latency_ms + self.write_latency_ms


class SLAOptimizer:
    """Exhaustive (N, R, W) search against an :class:`SLATarget`.

    Parameters
    ----------
    distributions:
        WARS latency distributions, or a callable mapping a replication factor
        to distributions (needed when the latency model depends on N, as in
        the WAN scenario).
    replication_factors:
        The N values to consider (defaults to 1 through 5).
    trials:
        Monte Carlo trials per configuration.
    rng:
        Seed or generator, forwarded to every sweep verbatim (integer seeds
        give common random numbers across evaluations).
    chunk_size:
        Engine chunk size (``None`` selects the engine default).
    tolerance:
        Optional Wilson half-width for early stopping per sweep.
    workers:
        Shard each sweep across this many worker processes; seed-mode
        results are worker-count invariant, so sharding never changes which
        configuration wins.
    probe_resolution_ms:
        Enable adaptive probe-grid refinement in every evaluation sweep: the
        engine probes the coarse
        :data:`~repro.montecarlo.engine.DEFAULT_ADAPTIVE_GRID_MS` base grid
        and refines around each candidate's staleness-target crossing, so
        ``t_visibility_ms`` is resolved to this many milliseconds from exact
        bracketing counts — the quantity the SLA verdict hinges on.
    kernel_backend:
        Sampling-reduction backend from :mod:`repro.kernels` used by every
        evaluation sweep (``None`` is the bit-for-bit NumPy reference;
        ``"numba"`` the fused JIT kernel).
    analytic_predictor:
        Optional pre-built :class:`repro.analytic.AnalyticPredictor` used by
        the analytic modes when ``distributions`` is static.  Passing a warm
        predictor lets callers (e.g. the serving layer) share one set of
        environment tables across many optimisations; its distributions must
        be the ones passed as ``distributions``.  Ignored when
        ``distributions`` is callable (each N then owns its environment).
    mode:
        ``"montecarlo"`` (default) evaluates every candidate by sampling.
        ``"analytic"`` evaluates through :class:`repro.analytic.AnalyticPredictor`
        instead — the whole ``O(N^2)`` search then costs milliseconds, which
        is the paper's "SLA search as a small optimisation problem" reading
        taken literally.  ``"hybrid"`` searches analytically and then
        re-evaluates only the winning configuration by Monte Carlo in
        :meth:`best` (the verdict reported is the Monte Carlo one).  The
        analytic modes require i.i.d. replicas, so WAN-style per-replica
        models must use ``"montecarlo"``.
    """

    def __init__(
        self,
        distributions: WARSDistributions | Callable[[int], WARSDistributions],
        replication_factors: Sequence[int] = (1, 2, 3, 4, 5),
        trials: int = 50_000,
        rng: np.random.Generator | int | None = None,
        chunk_size: int | None = None,
        tolerance: float | None = None,
        workers: int = 1,
        probe_resolution_ms: float | None = None,
        kernel_backend: str | None = None,
        mode: str = "montecarlo",
        analytic_predictor: object | None = None,
    ) -> None:
        if trials < 100:
            raise ConfigurationError(f"at least 100 trials are required, got {trials}")
        if not replication_factors:
            raise ConfigurationError("at least one replication factor is required")
        if mode not in ("montecarlo", "analytic", "hybrid"):
            raise ConfigurationError(
                f"mode must be 'montecarlo', 'analytic' or 'hybrid', got {mode!r}"
            )
        self._distributions = distributions
        self._replication_factors = tuple(sorted(set(replication_factors)))
        self._trials = trials
        # Kept verbatim: integer seeds select the engine's chunk-size-invariant
        # mode (and give common random numbers across evaluate() calls); a
        # generator is consumed sequentially across evaluations.
        self._rng = rng
        self._chunk_size = chunk_size
        self._tolerance = tolerance
        # Forwarded to each sweep; seed-mode results are worker-count
        # invariant, so sharding never changes which configuration wins.
        self._workers = workers
        self._probe_resolution_ms = probe_resolution_ms
        # Sampling-reduction backend name, forwarded to every sweep (None is
        # the bit-for-bit NumPy reference).
        self._kernel_backend = kernel_backend
        self._mode = mode
        if analytic_predictor is not None and callable(distributions):
            raise ConfigurationError(
                "a pre-built analytic predictor can only be supplied with static "
                "distributions (a callable gives each replication factor its own "
                "environment)"
            )
        # Analytic predictors cached per replication factor when the
        # distributions are callable (each N may then have its own environment
        # tables); static distributions define a single environment whose
        # tables are shared by every N, so one predictor serves them all.
        self._analytic_cache: dict[object, object] = {}
        if analytic_predictor is not None:
            self._analytic_cache["static"] = analytic_predictor

    def _distributions_for(self, n: int) -> WARSDistributions:
        if callable(self._distributions):
            return self._distributions(n)
        return self._distributions

    def _analytic_for(self, n: int):
        # Imported lazily for symmetry with the engine import in _engine_for.
        from repro.analytic.predictor import AnalyticPredictor

        key: object = n if callable(self._distributions) else "static"
        predictor = self._analytic_cache.get(key)
        if predictor is None:
            predictor = AnalyticPredictor(distributions=self._distributions_for(n))
            self._analytic_cache[key] = predictor
        return predictor

    def _candidate_configs(self, target: SLATarget) -> Iterable[ReplicaConfig]:
        for n in self._replication_factors:
            if n < target.min_replication:
                continue
            for config in iter_configs(n):
                if config.w >= target.min_write_quorum:
                    yield config

    def _build_evaluation(
        self,
        config: ReplicaConfig,
        target: SLATarget,
        read_latency: float,
        write_latency: float,
        t_visibility: float,
        consistency_at_commit: float,
    ) -> ConfigurationEvaluation:
        violations: list[str] = []
        if target.read_latency_ms is not None and read_latency > target.read_latency_ms:
            violations.append(
                f"read latency {read_latency:.2f} ms exceeds {target.read_latency_ms:.2f} ms"
            )
        if target.write_latency_ms is not None and write_latency > target.write_latency_ms:
            violations.append(
                f"write latency {write_latency:.2f} ms exceeds {target.write_latency_ms:.2f} ms"
            )
        if target.t_visibility_ms is not None and t_visibility > target.t_visibility_ms:
            violations.append(
                f"t-visibility {t_visibility:.2f} ms exceeds {target.t_visibility_ms:.2f} ms"
            )
        return ConfigurationEvaluation(
            config=config,
            read_latency_ms=read_latency,
            write_latency_ms=write_latency,
            t_visibility_ms=t_visibility,
            consistency_at_commit=consistency_at_commit,
            meets_target=not violations,
            violations=tuple(violations),
        )

    def evaluate(self, config: ReplicaConfig, target: SLATarget) -> ConfigurationEvaluation:
        """Evaluate one configuration against the target.

        Runs a single-configuration sweep through the same engine as
        :meth:`evaluate_all`.  With an integer seed and no early-stopping
        ``tolerance`` the numbers agree exactly with the corresponding
        :meth:`evaluate_all` row (seeded sample streams are keyed by
        replication factor, not by sweep shape).  With a tolerance the two
        calls may stop at different trial counts (a lone configuration can
        converge before its whole group); with a shared generator they
        consume the stream at different points.  Either way the numbers
        differ only within Monte Carlo noise.

        Args
        ----
        config:
            The (N, R, W) configuration to measure.
        target:
            The SLA to judge it against.

        Returns
        -------
        A :class:`ConfigurationEvaluation` with the measured latencies,
        t-visibility, and the per-constraint violations (empty when the
        configuration meets the target).

        Example
        -------
        >>> from repro import ReplicaConfig, SLAOptimizer, SLATarget, production_fit
        >>> optimizer = SLAOptimizer(production_fit("LNKD-SSD"), trials=2_000, rng=0)
        >>> evaluation = optimizer.evaluate(
        ...     ReplicaConfig(3, 1, 1), SLATarget(t_visibility_ms=1_000.0))
        >>> evaluation.meets_target
        True
        """
        if self._mode in ("analytic", "hybrid"):
            return self._evaluation_from_analytic(config, target)
        summary = self._engine_for(config.n, (config,), target).run(
            self._trials, self._rng
        ).results[0]
        return self._evaluation_from_summary(summary, target)

    def _evaluate_montecarlo(
        self, config: ReplicaConfig, target: SLATarget
    ) -> ConfigurationEvaluation:
        """Monte Carlo evaluation regardless of mode (hybrid confirmation)."""
        summary = self._engine_for(config.n, (config,), target).run(
            self._trials, self._rng
        ).results[0]
        return self._evaluation_from_summary(summary, target)

    def _evaluation_from_analytic(
        self, config: ReplicaConfig, target: SLATarget
    ) -> ConfigurationEvaluation:
        result = self._analytic_for(config.n).result(config)
        return self._build_evaluation(
            config,
            target,
            read_latency=result.read_latency_percentile(target.latency_percentile),
            write_latency=result.write_latency_percentile(target.latency_percentile),
            t_visibility=result.t_visibility(target.consistency_probability),
            consistency_at_commit=result.probability_never_stale(),
        )

    def _engine_for(self, n: int, configs: Sequence[ReplicaConfig], target: SLATarget):
        # Imported lazily: repro.core must stay importable without pulling in
        # the montecarlo package at module-import time.
        from repro.montecarlo.engine import SweepEngine, min_trials_for_quantile

        return SweepEngine(
            self._distributions_for(n),
            configs,
            chunk_size=self._chunk_size,
            tolerance=self._tolerance,
            # The evaluation reports tail quantiles of the target; early
            # stopping must leave them ~100 tail samples of support.
            min_trials=max(
                min_trials_for_quantile(target.consistency_probability),
                min_trials_for_quantile(target.latency_percentile / 100.0),
            ),
            workers=self._workers,
            # Refine around the staleness target the SLA verdict hinges on
            # (a no-op unless probe_resolution_ms enables the adaptive grid).
            target_probability=target.consistency_probability,
            probe_resolution_ms=self._probe_resolution_ms,
            kernel_backend=self._kernel_backend,
        )

    def _evaluation_from_summary(self, summary, target: SLATarget) -> ConfigurationEvaluation:
        return self._build_evaluation(
            summary.config,
            target,
            read_latency=summary.read_latency_percentile(target.latency_percentile),
            write_latency=summary.write_latency_percentile(target.latency_percentile),
            t_visibility=summary.t_visibility(target.consistency_probability),
            consistency_at_commit=summary.probability_never_stale(),
        )

    def evaluate_all(self, target: SLATarget) -> list[ConfigurationEvaluation]:
        """Evaluate every candidate configuration, sorted by combined tail latency.

        Candidates sharing a replication factor are evaluated against one
        shared sample batch (:class:`~repro.montecarlo.engine.SweepEngine`),
        so each latency environment is sampled once per replication factor
        rather than once per (R, W) pair.

        Args
        ----
        target:
            The SLA every candidate is judged against (also supplies the
            durability/availability floors that prune the candidate set).

        Returns
        -------
        Every candidate's :class:`ConfigurationEvaluation`, sorted by
        combined read+write tail latency (best trade-off first).
        """
        by_factor: dict[int, list[ReplicaConfig]] = {}
        for config in self._candidate_configs(target):
            by_factor.setdefault(config.n, []).append(config)
        if not by_factor:
            raise ConfigurationError(
                "no candidate configurations satisfy the durability/availability floors"
            )
        evaluations: list[ConfigurationEvaluation] = []
        if self._mode in ("analytic", "hybrid"):
            for configs in by_factor.values():
                for config in configs:
                    evaluations.append(self._evaluation_from_analytic(config, target))
            return sorted(evaluations, key=lambda e: e.combined_latency_ms)
        for n, configs in by_factor.items():
            for summary in self._engine_for(n, configs, target).run(self._trials, self._rng):
                evaluations.append(self._evaluation_from_summary(summary, target))
        return sorted(evaluations, key=lambda e: e.combined_latency_ms)

    def best(self, target: SLATarget) -> ConfigurationEvaluation | None:
        """Return the lowest-latency configuration meeting the target, or ``None``.

        Ties are broken toward lower combined read+write tail latency, then
        toward higher durability (larger ``W``), matching the paper's framing
        that replication for durability can be decoupled from replication for
        latency.

        Args
        ----
        target:
            The SLA to satisfy.

        Returns
        -------
        The winning :class:`ConfigurationEvaluation`, or ``None`` when no
        candidate meets every constraint.  In ``hybrid`` mode the analytic
        search picks the winner and a Monte Carlo evaluation of that single
        configuration is returned (and must itself meet the target),
        combining the analytic search speed with a sampled verdict.
        """
        feasible = [
            evaluation for evaluation in self.evaluate_all(target) if evaluation.meets_target
        ]
        if not feasible:
            return None
        feasible.sort(key=lambda e: (e.combined_latency_ms, -e.config.w))
        if self._mode == "hybrid":
            confirmed = self._evaluate_montecarlo(feasible[0].config, target)
            return confirmed if confirmed.meets_target else None
        return feasible[0]
