"""PBS monotonic-reads consistency (paper §3.2).

Monotonic reads is the session guarantee that a client never observes older
data than it has already read.  The paper shows it is a special case of
k-staleness: if the system-wide write rate to a key is ``γ_gw`` and the
client's read rate from that key is ``γ_cr``, then ``γ_gw / γ_cr`` versions
are written between consecutive client reads, so the client reads
monotonically with probability (Equation 3)::

    1 - p_s ** (1 + γ_gw / γ_cr)

For *strict* monotonic reads (the client must observe strictly newer data when
it exists), the exponent drops to ``γ_gw / γ_cr``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.kstaleness import probability_nonintersection
from repro.core.quorum import ReplicaConfig
from repro.exceptions import ConfigurationError

__all__ = ["MonotonicReadsModel", "monotonic_reads_probability", "strict_monotonic_reads_probability"]


def _version_ratio(global_write_rate: float, client_read_rate: float) -> float:
    """Return γ_gw / γ_cr after validating both rates."""
    if global_write_rate < 0:
        raise ConfigurationError(f"global write rate must be non-negative, got {global_write_rate}")
    if client_read_rate <= 0:
        raise ConfigurationError(f"client read rate must be positive, got {client_read_rate}")
    return global_write_rate / client_read_rate


def monotonic_reads_probability(
    config: ReplicaConfig, global_write_rate: float, client_read_rate: float
) -> float:
    """Equation 3: probability a client's next read is no older than its last read."""
    exponent = 1.0 + _version_ratio(global_write_rate, client_read_rate)
    return 1.0 - probability_nonintersection(config) ** exponent


def strict_monotonic_reads_probability(
    config: ReplicaConfig, global_write_rate: float, client_read_rate: float
) -> float:
    """Probability of reading *strictly newer* data when newer versions exist.

    Uses exponent ``γ_gw / γ_cr`` as described in §3.2.  When no writes occur
    between reads (ratio 0) the exponent is 0, so the probability is 0 — there
    is nothing newer to observe, matching the paper's definition.
    """
    exponent = _version_ratio(global_write_rate, client_read_rate)
    if exponent == 0.0:
        return 0.0
    return 1.0 - probability_nonintersection(config) ** exponent


@dataclass(frozen=True)
class MonotonicReadsModel:
    """Monotonic-reads predictions for one configuration and workload rates.

    Attributes
    ----------
    config:
        The (N, R, W) replication configuration.
    global_write_rate:
        γ_gw — system-wide writes per second to the data item.
    client_read_rate:
        γ_cr — this client's reads per second from the data item.
    """

    config: ReplicaConfig
    global_write_rate: float
    client_read_rate: float

    @property
    def versions_between_reads(self) -> float:
        """Expected number of versions committed between consecutive client reads."""
        return _version_ratio(self.global_write_rate, self.client_read_rate)

    @property
    def effective_k(self) -> float:
        """The k-staleness exponent used for the (non-strict) monotonic reads bound."""
        return 1.0 + self.versions_between_reads

    def probability(self) -> float:
        """Probability of monotonic reads (Equation 3)."""
        return monotonic_reads_probability(
            self.config, self.global_write_rate, self.client_read_rate
        )

    def strict_probability(self) -> float:
        """Probability of strict monotonic reads."""
        return strict_monotonic_reads_probability(
            self.config, self.global_write_rate, self.client_read_rate
        )

    def required_read_rate_for(self, target: float) -> float:
        """Client read rate needed to achieve a target monotonic-reads probability.

        Solves ``1 - p_s^(1 + γ_gw/γ_cr) >= target`` for ``γ_cr``, holding the
        write rate fixed.  Useful for the admission-control discussion in
        §3.2.  Returns ``0`` if the target is met even at infinitesimal read
        rates, and raises if the target is unattainable at any read rate.
        """
        import math

        if not 0.0 <= target < 1.0:
            raise ConfigurationError(f"target probability must be in [0, 1), got {target}")
        p_s = probability_nonintersection(self.config)
        if p_s == 0.0:
            return 0.0
        # Required exponent: k such that 1 - p_s^k >= target.
        required_exponent = math.log(1.0 - target) / math.log(p_s)
        if required_exponent <= 1.0:
            # Even a single version of slack (k=1) suffices at any read rate.
            return 0.0
        if self.global_write_rate == 0.0:
            return 0.0
        return self.global_write_rate / (required_exponent - 1.0)
