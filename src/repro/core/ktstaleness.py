"""PBS ⟨k, t⟩-staleness: combined version and wall-clock staleness (paper §3.5).

⟨k, t⟩-staleness asks for the probability that a read started ``t`` seconds
after the last ``k`` versions committed returns a value within ``k`` versions
of the latest.  Equation 5 bounds the probability of violating this by
exponentiating the single-write t-visibility staleness bound by ``k`` (the
paper's conservative assumption is that all ``k`` writes committed
simultaneously, which maximises the chance every one of them is missed).

The special cases called out in the paper are exposed as named helpers:

* ``⟨k, 0⟩`` — probabilistic k-quorum consistency (Equation 2),
* ``⟨1, t⟩`` — plain t-visibility (Equation 4),
* ``⟨1 + γ_gw/γ_cr, 0⟩`` — monotonic reads (Equation 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.quorum import ReplicaConfig
from repro.core.tvisibility import WritePropagationModel, staleness_upper_bound
from repro.exceptions import ConfigurationError

__all__ = ["kt_staleness_probability", "kt_consistency_probability", "KTStalenessModel"]


def kt_staleness_probability(
    config: ReplicaConfig,
    propagation: WritePropagationModel,
    k: int,
    t_ms: float,
) -> float:
    """Equation 5: probability of reading data more than ``k`` versions stale at time ``t``.

    Conservative upper bound: assumes the last ``k`` writes all committed at
    the same instant ``t`` ms before the read begins.
    """
    if k < 1:
        raise ConfigurationError(f"version tolerance k must be >= 1, got {k}")
    single_write_staleness = staleness_upper_bound(config, propagation, t_ms)
    return single_write_staleness**k


def kt_consistency_probability(
    config: ReplicaConfig,
    propagation: WritePropagationModel,
    k: int,
    t_ms: float,
) -> float:
    """Probability of reading within ``k`` versions, ``t`` ms after those writes commit."""
    return 1.0 - kt_staleness_probability(config, propagation, k, t_ms)


@dataclass(frozen=True)
class KTStalenessModel:
    """⟨k, t⟩-staleness predictions for one configuration and propagation model."""

    config: ReplicaConfig
    propagation: WritePropagationModel

    def staleness(self, k: int, t_ms: float) -> float:
        """Probability of violating ⟨k, t⟩-staleness."""
        return kt_staleness_probability(self.config, self.propagation, k, t_ms)

    def consistency(self, k: int, t_ms: float) -> float:
        """Probability of satisfying ⟨k, t⟩-staleness."""
        return kt_consistency_probability(self.config, self.propagation, k, t_ms)

    def staleness_with_individual_times(
        self, commit_ages_ms: Sequence[float]
    ) -> float:
        """Improved bound when the time since commit of each of the last k writes is known.

        The paper notes that if the commit times of the last ``k`` writes are
        known individually, the bound improves by multiplying each write's own
        staleness probability instead of exponentiating the worst case.
        ``commit_ages_ms[i]`` is the elapsed time since the i-th most recent
        write committed (so it is non-decreasing in ``i``).
        """
        if not commit_ages_ms:
            raise ConfigurationError("at least one commit age is required")
        probability = 1.0
        for age in commit_ages_ms:
            probability *= staleness_upper_bound(self.config, self.propagation, age)
        return probability

    def surface(
        self, ks: Sequence[int], times_ms: Sequence[float]
    ) -> list[dict[str, float]]:
        """Evaluate the consistency probability over a (k, t) grid for tables/plots."""
        rows = []
        for k in ks:
            for t_ms in times_ms:
                rows.append(
                    {
                        "k": float(k),
                        "t_ms": float(t_ms),
                        "p_consistent": self.consistency(k, t_ms),
                    }
                )
        return rows
