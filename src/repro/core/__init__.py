"""Core PBS models: the paper's primary contribution.

Closed-form k-staleness and monotonic reads, load/capacity corollaries, the
t-visibility bound for expanding quorums, ⟨k, t⟩-staleness, the WARS Monte
Carlo model, the high-level :class:`~repro.core.predictor.PBSPredictor`, and
the SLA-driven configuration search.
"""

from repro.core.kstaleness import (
    KStalenessModel,
    consistency_probability,
    k_for_target_probability,
    probability_nonintersection,
    staleness_probability,
)
from repro.core.ktstaleness import (
    KTStalenessModel,
    kt_consistency_probability,
    kt_staleness_probability,
)
from repro.core.load import (
    LoadModel,
    capacity_from_load,
    epsilon_intersecting_load,
    k_staleness_load,
    monotonic_reads_load,
)
from repro.core.monotonic import (
    MonotonicReadsModel,
    monotonic_reads_probability,
    strict_monotonic_reads_probability,
)
from repro.core.predictor import PBSPredictor, PBSReport
from repro.core.quorum import CASSANDRA_DEFAULT, RIAK_DEFAULT, ReplicaConfig, iter_configs
from repro.core.sla import ConfigurationEvaluation, SLAOptimizer, SLATarget
from repro.core.tvisibility import (
    EmpiricalPropagation,
    ExponentialPropagation,
    InstantaneousPropagation,
    WritePropagationModel,
    staleness_upper_bound,
    visibility_curve,
    visibility_lower_bound,
)
from repro.core.wars import WARSModel, WARSSampleBatch, WARSTrialResult, sample_wars_batch

__all__ = [
    "KStalenessModel",
    "consistency_probability",
    "k_for_target_probability",
    "probability_nonintersection",
    "staleness_probability",
    "KTStalenessModel",
    "kt_consistency_probability",
    "kt_staleness_probability",
    "LoadModel",
    "capacity_from_load",
    "epsilon_intersecting_load",
    "k_staleness_load",
    "monotonic_reads_load",
    "MonotonicReadsModel",
    "monotonic_reads_probability",
    "strict_monotonic_reads_probability",
    "PBSPredictor",
    "PBSReport",
    "CASSANDRA_DEFAULT",
    "RIAK_DEFAULT",
    "ReplicaConfig",
    "iter_configs",
    "ConfigurationEvaluation",
    "SLAOptimizer",
    "SLATarget",
    "EmpiricalPropagation",
    "ExponentialPropagation",
    "InstantaneousPropagation",
    "WritePropagationModel",
    "staleness_upper_bound",
    "visibility_curve",
    "visibility_lower_bound",
    "WARSModel",
    "WARSSampleBatch",
    "WARSTrialResult",
    "sample_wars_batch",
]
