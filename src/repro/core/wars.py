"""The WARS model of Dynamo-style operation latency and staleness (paper §4, §5.1).

WARS names the four one-way message delays between a coordinator and a
replica:

* ``W`` — coordinator → replica, carrying the write,
* ``A`` — replica → coordinator, acknowledging the write,
* ``R`` — coordinator → replica, carrying the read request,
* ``S`` — replica → coordinator, carrying the read response.

A write *commits* when the coordinator has ``W`` (the quorum size)
acknowledgements; its commit latency is therefore the ``W``-th smallest of the
per-replica ``W[i] + A[i]`` sums.  A read returns once ``R`` responses arrive,
i.e. after the ``R``-th smallest ``R[i] + S[i]``.  The read is **stale** when
every one of the first ``R`` responding replicas received the read request
before it received the latest write: for responder ``i``,
``wt + t + R[i] < W[i]`` where ``wt`` is the commit latency and ``t`` the time
between commit and the start of the read.

The analytic formulation involves coupled order statistics, so the paper (and
this module) evaluates it by Monte Carlo.  The key observation used here is
that each simulated operation pair yields a *staleness threshold*::

    threshold = min over first-R responders of (W[i] − R[i]) − wt

and the read is consistent exactly when ``t >= threshold``.  One set of trials
therefore produces the entire t-visibility curve (the empirical CDF of the
thresholds) as well as read- and write-latency distributions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Sequence

import numpy as np

from repro.core.quorum import ReplicaConfig
from repro.exceptions import ConfigurationError, DistributionError
from repro.kernels import KernelBackend, resolve_backend
from repro.latency.base import LatencyDistribution, as_rng
from repro.latency.composite import PerReplicaLatency
from repro.latency.production import WARSDistributions

__all__ = ["WARSTrialResult", "WARSSampleBatch", "WARSModel", "sample_wars_batch"]


def _sample_pair_matrices(
    outbound: LatencyDistribution,
    inbound: LatencyDistribution,
    trials: int,
    n: int,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Sample the (outbound, inbound) delay matrices for one coordinator's messages.

    Both matrices have shape ``(trials, n)``.  When either distribution is
    per-replica, the same per-trial column permutation is applied to both so
    that "which replica is local" is consistent for a given coordinator, while
    remaining random across trials (the paper's WAN scenario).
    """

    def draw(distribution: LatencyDistribution) -> np.ndarray:
        if isinstance(distribution, PerReplicaLatency):
            if distribution.replica_count != n:
                raise DistributionError(
                    f"per-replica distribution has {distribution.replica_count} replicas "
                    f"but the configuration requires N={n}"
                )
            return distribution.sample_matrix(trials, rng)
        return distribution.sample(trials * n, rng).reshape(trials, n)

    outbound_matrix = draw(outbound)
    inbound_matrix = draw(inbound)

    per_replica = isinstance(outbound, PerReplicaLatency) or isinstance(
        inbound, PerReplicaLatency
    )
    if per_replica:
        # One permutation per trial, shared by the outbound and inbound legs.
        permutations = np.argsort(rng.random((trials, n)), axis=1)
        row_index = np.arange(trials)[:, None]
        outbound_matrix = outbound_matrix[row_index, permutations]
        inbound_matrix = inbound_matrix[row_index, permutations]
    return outbound_matrix, inbound_matrix


@dataclass(frozen=True)
class WARSSampleBatch:
    """One shared draw of the WARS delay matrices, pre-reduced for any (R, W).

    The four sampled delay matrices depend only on the latency distributions
    and the replication factor ``N`` — never on the quorum sizes ``R`` and
    ``W``.  This object therefore stores one draw in a form that makes the
    per-configuration reduction a set of column reads:

    * ``commit_latency_by_w_ms[:, w - 1]`` is the commit latency for write
      quorum size ``w`` (the ``w``-th smallest per-replica ``W[i] + A[i]``);
    * ``read_latency_by_r_ms[:, r - 1]`` is the read latency for read quorum
      size ``r`` (the ``r``-th smallest per-replica ``R[i] + S[i]``);
    * ``freshness_margin_by_r_ms[:, r - 1]`` is the running minimum of
      ``W[i] - R[i]`` over the first ``r`` responders in read-response order,
      so the staleness threshold for configuration ``(r, w)`` is simply
      ``freshness_margin_by_r_ms[:, r - 1] - commit_latency_by_w_ms[:, w - 1]``.

    Evaluating many configurations against one batch preserves the per-trial
    coupling between read and write order statistics exactly as if each
    configuration had been reduced from the same four matrices individually —
    :meth:`reduce` is bit-for-bit identical to what
    :meth:`WARSModel.sample` computes for a single configuration.
    """

    n: int
    #: Raw per-trial, per-replica write-propagation delays (the W matrix).
    write_arrivals_ms: np.ndarray = field(repr=False)
    #: Sorted per-trial write round trips (W + A), ascending along axis 1.
    commit_latency_by_w_ms: np.ndarray = field(repr=False)
    #: Sorted per-trial read round trips (R + S), ascending along axis 1.
    read_latency_by_r_ms: np.ndarray = field(repr=False)
    #: Prefix minima of (W - R) in read-responder order along axis 1.
    freshness_margin_by_r_ms: np.ndarray = field(repr=False)

    @property
    def trials(self) -> int:
        """Number of simulated operations in this batch."""
        return int(self.commit_latency_by_w_ms.shape[0])

    def reduce(self, config: ReplicaConfig) -> "WARSTrialResult":
        """Reduce the shared samples for one (N, R, W) configuration.

        O(trials) column reads; no re-sampling and no re-sorting.
        """
        if config.n != self.n:
            raise ConfigurationError(
                f"batch was sampled for N={self.n} but the configuration requires "
                f"N={config.n}"
            )
        commit_latencies = self.commit_latency_by_w_ms[:, config.w - 1]
        read_latencies = self.read_latency_by_r_ms[:, config.r - 1]
        staleness_thresholds = (
            self.freshness_margin_by_r_ms[:, config.r - 1] - commit_latencies
        )
        return WARSTrialResult(
            config=config,
            commit_latencies_ms=commit_latencies,
            read_latencies_ms=read_latencies,
            staleness_thresholds_ms=staleness_thresholds,
            write_arrivals_ms=self.write_arrivals_ms,
        )


def sample_wars_batch(
    distributions: WARSDistributions,
    trials: int,
    n: int,
    rng: np.random.Generator,
    kernel_backend: str | KernelBackend | None = None,
) -> WARSSampleBatch:
    """Draw the four WARS delay matrices once and pre-reduce the order statistics.

    The sampling order (W/A pair first, then R/S pair) matches
    :meth:`WARSModel.sample` exactly, so a batch drawn from a generator in a
    given state yields the same trials the single-configuration kernel would
    have produced from that state.

    ``kernel_backend`` selects the reduction implementation from
    :mod:`repro.kernels` (``None`` is the bit-for-bit NumPy reference).
    Sampling itself is shared by every backend, so all backends consume
    identical random streams; only the sort/argsort/prefix-min reduction is
    pluggable.
    """
    if trials < 1:
        raise ConfigurationError(f"trial count must be >= 1, got {trials}")
    if n < 1:
        raise ConfigurationError(f"replication factor must be >= 1, got {n}")
    backend = resolve_backend(kernel_backend)

    write_delays, ack_delays = _sample_pair_matrices(
        distributions.w, distributions.a, trials, n, rng
    )
    read_delays, response_delays = _sample_pair_matrices(
        distributions.r, distributions.s, trials, n, rng
    )

    commit_latency_by_w, read_latency_by_r, freshness_margin_by_r = (
        backend.reduce_batch(write_delays, ack_delays, read_delays, response_delays)
    )

    return WARSSampleBatch(
        n=n,
        write_arrivals_ms=write_delays,
        commit_latency_by_w_ms=commit_latency_by_w,
        read_latency_by_r_ms=read_latency_by_r,
        freshness_margin_by_r_ms=freshness_margin_by_r,
    )


@dataclass(frozen=True)
class WARSTrialResult:
    """Vectorised outcome of a batch of WARS Monte Carlo trials.

    Each of the arrays has one entry per simulated write/read pair.
    """

    config: ReplicaConfig
    commit_latencies_ms: np.ndarray
    read_latencies_ms: np.ndarray
    staleness_thresholds_ms: np.ndarray
    #: Per-trial, per-replica write arrival times (W delays); useful for
    #: building empirical propagation models.  ``None`` when the producer did
    #: not retain the raw propagation matrix.
    write_arrivals_ms: np.ndarray | None = field(repr=False, default=None)

    @property
    def trials(self) -> int:
        """Number of simulated operations in this batch."""
        return int(self.commit_latencies_ms.size)

    @cached_property
    def _sorted_thresholds_ms(self) -> np.ndarray:
        """The staleness thresholds sorted ascending, computed once.

        Every consistency query is an order-statistic lookup over the
        thresholds; caching the sorted array turns repeated curve /
        t-visibility / point queries from O(trials log trials) each into one
        sort amortised over the result's lifetime.  (``cached_property``
        writes straight into ``__dict__``, which a frozen dataclass permits.)
        """
        return np.sort(self.staleness_thresholds_ms)

    def consistency_counts(self, times_ms: Sequence[float]) -> np.ndarray:
        """Exact count of trials consistent at each requested time since commit."""
        times = np.asarray(list(times_ms), dtype=float)
        if np.any(times < 0):
            raise ConfigurationError("times since commit must be non-negative")
        return np.searchsorted(self._sorted_thresholds_ms, times, side="right")

    def consistency_probability(self, t_ms: float) -> float:
        """Fraction of trials whose read, started ``t_ms`` after commit, is consistent."""
        if t_ms < 0:
            raise ConfigurationError(f"time since commit must be non-negative, got {t_ms}")
        count = np.searchsorted(self._sorted_thresholds_ms, t_ms, side="right")
        return float(count / self.trials)

    def consistency_curve(self, times_ms: Sequence[float]) -> list[tuple[float, float]]:
        """Return ``(t, P(consistent at t))`` for each requested time since commit."""
        times = np.asarray(list(times_ms), dtype=float)
        probabilities = self.consistency_counts(times) / self.trials
        return [(float(t), float(p)) for t, p in zip(times, probabilities)]

    def t_visibility(self, target_probability: float) -> float:
        """Smallest ``t`` (ms) at which the probability of consistency reaches the target.

        This is the paper's "t-visibility for p_st = 1 - target" quantity, e.g.
        ``target_probability=0.999`` reproduces the Table 4 columns.  Returns
        0.0 when even immediately-after-commit reads already meet the target.
        """
        if not 0.0 < target_probability <= 1.0:
            raise ConfigurationError(
                f"target probability must be in (0, 1], got {target_probability}"
            )
        thresholds = self._sorted_thresholds_ms
        index = int(np.ceil(target_probability * thresholds.size)) - 1
        index = min(max(index, 0), thresholds.size - 1)
        return float(max(thresholds[index], 0.0))

    def read_latency_percentile(self, percentile: float) -> float:
        """Read operation latency (ms) at the given percentile."""
        return float(np.percentile(self.read_latencies_ms, percentile))

    def write_latency_percentile(self, percentile: float) -> float:
        """Write (commit) latency (ms) at the given percentile."""
        return float(np.percentile(self.commit_latencies_ms, percentile))

    def probability_never_stale(self) -> float:
        """Fraction of trials that are consistent even at ``t = 0``."""
        return self.consistency_probability(0.0)


@dataclass(frozen=True)
class WARSModel:
    """Monte Carlo evaluator for Dynamo-style t-visibility under the WARS model.

    Parameters
    ----------
    distributions:
        The four one-way latency distributions (``W``, ``A``, ``R``, ``S``).
    config:
        The (N, R, W) replication configuration being evaluated.
    """

    distributions: WARSDistributions
    config: ReplicaConfig

    def sample(
        self,
        trials: int,
        rng: np.random.Generator | int | None = None,
        kernel_backend: str | KernelBackend | None = None,
    ) -> WARSTrialResult:
        """Run ``trials`` simulated write/read pairs and return the batched result.

        This is the single-configuration kernel: one shared draw of the four
        delay matrices (:func:`sample_wars_batch`) reduced for this model's
        configuration.  Multi-configuration sweeps should share the batch via
        :class:`repro.montecarlo.engine.SweepEngine` instead of calling this
        once per configuration.  ``kernel_backend`` selects the reduction
        implementation from :mod:`repro.kernels` (default: the NumPy
        reference).
        """
        generator = as_rng(rng)
        batch = sample_wars_batch(
            self.distributions,
            trials,
            self.config.n,
            generator,
            kernel_backend=kernel_backend,
        )
        return batch.reduce(self.config)

    def consistency_probability(
        self,
        t_ms: float,
        trials: int = 100_000,
        rng: np.random.Generator | int | None = None,
    ) -> float:
        """Convenience wrapper: sample and report P(consistent read) at one ``t``."""
        return self.sample(trials, rng).consistency_probability(t_ms)

    def with_config(self, config: ReplicaConfig) -> "WARSModel":
        """Return a model sharing this model's distributions with a new configuration."""
        return WARSModel(distributions=self.distributions, config=config)
