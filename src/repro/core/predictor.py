"""High-level PBS prediction API.

:class:`PBSPredictor` ties the closed-form k-staleness results, the WARS
Monte Carlo t-visibility machinery, and the ⟨k, t⟩ combination into a single
object that mirrors how an operator would consume PBS: pick a replication
configuration and a latency environment, then ask "how eventual?" and
"how consistent?".

Example
-------
>>> from repro import PBSPredictor, ReplicaConfig, production_fit
>>> predictor = PBSPredictor(production_fit("LNKD-SSD"), ReplicaConfig(n=3, r=1, w=1))
>>> report = predictor.report(trials=20_000, rng=0)
>>> 0.0 <= report.consistency_at_commit <= 1.0
True
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.core.kstaleness import KStalenessModel
from repro.core.ktstaleness import kt_consistency_probability
from repro.core.monotonic import MonotonicReadsModel
from repro.core.quorum import ReplicaConfig
from repro.core.tvisibility import EmpiricalPropagation
from repro.core.wars import WARSModel, WARSTrialResult
from repro.exceptions import ConfigurationError
from repro.latency.production import WARSDistributions

__all__ = ["PBSReport", "PBSPredictor"]

#: Latency percentiles included in :class:`PBSReport`, matching Table 4's focus
#: on tail latency plus the medians quoted in §5.6.
_REPORT_PERCENTILES: tuple[float, ...] = (50.0, 95.0, 99.0, 99.9)

#: Monte Carlo trials used by the hybrid-mode spot-check (capped by the
#: caller's ``trials`` budget).
_HYBRID_SPOT_TRIALS: int = 20_000


@dataclass(frozen=True)
class PBSReport:
    """A bundled prediction for one configuration and latency environment."""

    config: ReplicaConfig
    #: Monte Carlo trials behind the report: the full sweep budget in
    #: ``montecarlo`` mode, the spot-check budget in ``hybrid`` mode, zero in
    #: ``analytic`` mode.
    trials: int
    #: Probability a read immediately after commit (t = 0) is consistent.
    consistency_at_commit: float
    #: t (ms) needed for 99.9% probability of consistent reads.
    t_visibility_999: float
    #: t (ms) needed for 99% probability of consistent reads.
    t_visibility_99: float
    #: Closed-form probability of reading one of the last k versions (k = 1, 2, 3).
    k_staleness: Mapping[int, float]
    #: Read latency percentiles (ms) keyed by percentile.
    read_latency_ms: Mapping[float, float]
    #: Write (commit) latency percentiles (ms) keyed by percentile.
    write_latency_ms: Mapping[float, float]
    #: Achieved t-visibility brackets keyed by target probability, set on
    #: adaptive runs (``probe_resolution_ms``): the union-grid probe times
    #: the crossing sits between, or ``None`` when the crossing lies beyond
    #: the probe grid.  A fixed trial budget can end the run before the
    #: requested resolution is met — compare the bracket width against it.
    t_visibility_brackets: Mapping[float, tuple[float, float] | None] | None = None
    #: How the staleness/latency numbers were produced: ``"montecarlo"``
    #: (sweep-engine sampling), ``"analytic"`` (numerical convolution), or
    #: ``"hybrid"`` (analytic numbers spot-checked by a small sweep).
    mode: str = "montecarlo"
    #: Hybrid mode only: the Monte Carlo spot-check — trials run, the checked
    #: consistency probabilities, and their disagreement with the analytic
    #: values.
    montecarlo_check: Mapping[str, float] | None = None

    def summary_lines(self) -> list[str]:
        """Human-readable summary, one finding per line."""
        lines = [
            f"configuration: {self.config.label()} "
            f"({'strict' if self.config.is_strict else 'partial'} quorum)",
            f"P(consistent read immediately after commit) = {self.consistency_at_commit:.4f}",
            f"t-visibility for 99%   consistent reads = {self.t_visibility_99:.2f} ms",
            f"t-visibility for 99.9% consistent reads = {self.t_visibility_999:.2f} ms",
        ]
        for k, probability in sorted(self.k_staleness.items()):
            lines.append(f"P(read within {k} version{'s' if k > 1 else ''}) = {probability:.4f}")
        lines.append(
            "read latency ms (p50/p99/p99.9) = "
            f"{self.read_latency_ms[50.0]:.2f} / {self.read_latency_ms[99.0]:.2f} / "
            f"{self.read_latency_ms[99.9]:.2f}"
        )
        lines.append(
            "write latency ms (p50/p99/p99.9) = "
            f"{self.write_latency_ms[50.0]:.2f} / {self.write_latency_ms[99.0]:.2f} / "
            f"{self.write_latency_ms[99.9]:.2f}"
        )
        if self.mode != "montecarlo":
            lines.append(f"prediction mode: {self.mode} (numerical convolution)")
        if self.montecarlo_check is not None:
            lines.append(
                "Monte Carlo spot-check: "
                f"{int(self.montecarlo_check['trials'])} trials, max disagreement "
                f"{self.montecarlo_check['max_absolute_error']:.4f}"
            )
        return lines


@dataclass(frozen=True)
class PBSPredictor:
    """Predict staleness and latency for a replication configuration.

    Parameters
    ----------
    distributions:
        The WARS one-way latency distributions describing the deployment.
    config:
        The (N, R, W) configuration to evaluate.
    """

    distributions: WARSDistributions
    config: ReplicaConfig

    # ------------------------------------------------------------------
    # Closed-form predictions.
    # ------------------------------------------------------------------
    def k_staleness(self) -> KStalenessModel:
        """Closed-form k-staleness model (paper §3.1) for this configuration."""
        return KStalenessModel(self.config)

    def monotonic_reads(
        self, global_write_rate: float, client_read_rate: float
    ) -> MonotonicReadsModel:
        """Monotonic-reads model (paper §3.2) for the given workload rates."""
        return MonotonicReadsModel(
            config=self.config,
            global_write_rate=global_write_rate,
            client_read_rate=client_read_rate,
        )

    # ------------------------------------------------------------------
    # Monte Carlo predictions.
    # ------------------------------------------------------------------
    def wars(self) -> WARSModel:
        """The underlying WARS Monte Carlo model."""
        return WARSModel(distributions=self.distributions, config=self.config)

    def simulate(
        self, trials: int = 100_000, rng: np.random.Generator | int | None = None
    ) -> WARSTrialResult:
        """Run a batch of WARS trials and return the raw result.

        Args
        ----
        trials:
            Number of Monte Carlo trials to draw.
        rng:
            Seed or generator for reproducibility.

        Returns
        -------
        The per-trial arrays as a :class:`~repro.core.wars.WARSTrialResult`.
        """
        return self.wars().sample(trials, rng)

    def t_visibility(
        self,
        target_probability: float = 0.999,
        trials: int = 100_000,
        rng: np.random.Generator | int | None = None,
    ) -> float:
        """Time (ms) after commit needed to reach the target consistency probability.

        Args
        ----
        target_probability:
            Consistency probability in (0, 1] to reach.
        trials:
            Number of Monte Carlo trials backing the estimate.
        rng:
            Seed or generator for reproducibility.

        Returns
        -------
        The smallest ``t`` (ms) whose probability of consistent reads meets
        the target (exact order statistics over the sampled trials).

        Example
        -------
        >>> from repro import PBSPredictor, ReplicaConfig, production_fit
        >>> predictor = PBSPredictor(production_fit("LNKD-SSD"), ReplicaConfig(3, 1, 1))
        >>> predictor.t_visibility(0.9, trials=5_000, rng=0) >= 0.0
        True
        """
        return self.simulate(trials, rng).t_visibility(target_probability)

    def consistency_curve(
        self,
        times_ms: Sequence[float],
        trials: int = 100_000,
        rng: np.random.Generator | int | None = None,
    ) -> list[tuple[float, float]]:
        """``(t, P(consistent))`` pairs over a grid of times since commit.

        Args
        ----
        times_ms:
            Times since commit (ms) to evaluate.
        trials:
            Number of Monte Carlo trials backing the curve.
        rng:
            Seed or generator for reproducibility.

        Returns
        -------
        ``(t_ms, probability)`` pairs, one per requested time.
        """
        return self.simulate(trials, rng).consistency_curve(times_ms)

    def kt_staleness(
        self,
        k: int,
        t_ms: float,
        trials: int = 100_000,
        rng: np.random.Generator | int | None = None,
    ) -> float:
        """Monte-Carlo-backed ⟨k, t⟩-staleness consistency probability (paper §3.5).

        Uses the simulated write-arrival delays to build an empirical
        propagation model, then applies Equation 5.
        """
        result = self.simulate(trials, rng)
        if result.write_arrivals_ms is None:
            raise ConfigurationError(
                "kt_staleness requires trial results that retain the per-replica "
                "write-arrival matrix (write_arrivals_ms is None)"
            )
        arrivals = result.write_arrivals_ms - result.commit_latencies_ms[:, None]
        propagation = EmpiricalPropagation(arrival_delays_ms=arrivals)
        return kt_consistency_probability(self.config, propagation, k, t_ms)

    # ------------------------------------------------------------------
    # Bundled report.
    # ------------------------------------------------------------------
    def report(
        self,
        trials: int = 100_000,
        rng: np.random.Generator | int | None = None,
        ks: Sequence[int] = (1, 2, 3),
        chunk_size: int | None = None,
        tolerance: float | None = None,
        workers: int = 1,
        probe_resolution_ms: float | None = None,
        kernel_backend: str | None = None,
        mode: str = "montecarlo",
    ) -> PBSReport:
        """Produce a :class:`PBSReport` summarising latency and staleness predictions.

        In the default ``montecarlo`` mode, trials run through the streaming
        sweep engine, so arbitrarily large trial counts use bounded memory.
        ``mode="analytic"`` answers from :class:`repro.analytic.AnalyticPredictor`
        instead — no sampling at all, microsecond queries after a one-off
        tabulation — and ``mode="hybrid"`` takes the analytic numbers but runs
        a small Monte Carlo sweep as a spot-check, recording the disagreement
        in :attr:`PBSReport.montecarlo_check`.  The analytic path requires
        i.i.d. replicas (the WAN per-replica model stays Monte Carlo only).

        Args
        ----
        trials:
            Monte Carlo trial budget (at least 100).
        rng:
            Forwarded to the engine verbatim, so integer seeds give results
            independent of ``chunk_size`` — and of ``workers``.
        ks:
            The k values for the closed-form k-staleness rows.
        chunk_size:
            Engine chunk size (``None`` selects the engine default).
        tolerance:
            Optional Wilson half-width: stop early once the consistency
            estimates are this tight.
        workers:
            Shard seeded chunks across processes without changing any number.
        probe_resolution_ms:
            Enable adaptive probe-grid refinement: the engine probes the
            coarse :data:`~repro.montecarlo.engine.DEFAULT_ADAPTIVE_GRID_MS`
            base grid and refines around the report's 99% and 99.9%
            t-visibility crossings, so both figures come from exact
            bracketing counts at this resolution instead of the histogram
            sketch.
        kernel_backend:
            Sampling-reduction backend from :mod:`repro.kernels` (``None``
            is the bit-for-bit NumPy reference; ``"numba"`` the fused JIT
            kernel, falling back to ``numpy`` when numba is missing).
        mode:
            ``"montecarlo"`` (default), ``"analytic"``, or ``"hybrid"``.
            The sweep-engine knobs (``chunk_size``, ``tolerance``,
            ``workers``, ``probe_resolution_ms``, ``kernel_backend``) apply
            to the Monte Carlo sweep only; in ``analytic`` mode they are
            ignored, and in ``hybrid`` mode they tune the spot-check sweep.

        Returns
        -------
        A :class:`PBSReport`.

        Example
        -------
        >>> from repro import PBSPredictor, ReplicaConfig, production_fit
        >>> predictor = PBSPredictor(production_fit("LNKD-SSD"), ReplicaConfig(3, 1, 1))
        >>> report = predictor.report(trials=5_000, rng=0)
        >>> report.t_visibility_99 <= report.t_visibility_999
        True
        """
        # Imported lazily: repro.core must stay importable without pulling in
        # the montecarlo package at module-import time.
        from repro.montecarlo.engine import SweepEngine, min_trials_for_quantile

        if mode not in ("montecarlo", "analytic", "hybrid"):
            raise ConfigurationError(
                f"mode must be 'montecarlo', 'analytic' or 'hybrid', got {mode!r}"
            )
        if mode != "montecarlo":
            return self._analytic_report(
                mode=mode,
                trials=trials,
                rng=rng,
                ks=ks,
                chunk_size=chunk_size,
                tolerance=tolerance,
                workers=workers,
                kernel_backend=kernel_backend,
            )
        if trials < 100:
            raise ConfigurationError(
                f"at least 100 trials are required for a meaningful report, got {trials}"
            )
        engine = SweepEngine(
            self.distributions,
            (self.config,),
            chunk_size=chunk_size,
            tolerance=tolerance,
            # The report quotes 99.9% t-visibility and p99.9 latencies; keep
            # early stopping from starving that tail of samples.
            min_trials=min_trials_for_quantile(0.999),
            workers=workers,
            # The report quotes both the 99% and 99.9% crossings; adaptive
            # refinement (when probe_resolution_ms is set) localises each
            # independently over the engine's default coarse base grid.
            target_probability=(0.99, 0.999),
            probe_resolution_ms=probe_resolution_ms,
            kernel_backend=kernel_backend,
        )
        sweep = engine.run(trials, rng)
        summary = sweep.results[0]
        staleness_model = self.k_staleness()
        brackets = (
            {target: summary.t_visibility_bracket(target) for target in (0.99, 0.999)}
            if probe_resolution_ms is not None
            else None
        )
        return PBSReport(
            config=self.config,
            trials=sweep.trials_run,
            consistency_at_commit=summary.probability_never_stale(),
            t_visibility_999=summary.t_visibility(0.999),
            t_visibility_99=summary.t_visibility(0.99),
            k_staleness={k: staleness_model.consistency(k) for k in ks},
            read_latency_ms={
                p: summary.read_latency_percentile(p) for p in _REPORT_PERCENTILES
            },
            write_latency_ms={
                p: summary.write_latency_percentile(p) for p in _REPORT_PERCENTILES
            },
            t_visibility_brackets=brackets,
        )

    def _analytic_report(
        self,
        mode: str,
        trials: int,
        rng: np.random.Generator | int | None,
        ks: Sequence[int],
        chunk_size: int | None,
        tolerance: float | None,
        workers: int,
        kernel_backend: str | None,
    ) -> PBSReport:
        """Answer a report analytically; in hybrid mode, spot-check it by sampling."""
        # Imported lazily for symmetry with the engine: repro.core stays
        # importable without the analytic package.
        from repro.analytic.predictor import AnalyticPredictor

        analytic = AnalyticPredictor(distributions=self.distributions).result(self.config)
        staleness_model = self.k_staleness()
        check: dict[str, float] | None = None
        check_trials = 0
        if mode == "hybrid":
            from repro.montecarlo.engine import SweepEngine

            check_trials = max(min(trials, _HYBRID_SPOT_TRIALS), 100)
            probe_times = (0.0, analytic.t_visibility(0.99))
            engine = SweepEngine(
                self.distributions,
                (self.config,),
                times_ms=probe_times,
                chunk_size=chunk_size,
                tolerance=tolerance,
                workers=workers,
                kernel_backend=kernel_backend,
            )
            summary = engine.run(check_trials, rng).results[0]
            disagreements = [
                abs(analytic.consistency_probability(t) - summary.consistency_probability(t))
                for t in probe_times
            ]
            check = {
                "trials": float(check_trials),
                "consistency_at_commit": summary.probability_never_stale(),
                "consistency_at_t99": summary.consistency_probability(probe_times[1]),
                "max_absolute_error": max(disagreements),
            }
        return PBSReport(
            config=self.config,
            trials=check_trials,
            consistency_at_commit=analytic.consistency_probability(0.0),
            t_visibility_999=analytic.t_visibility(0.999),
            t_visibility_99=analytic.t_visibility(0.99),
            k_staleness={k: staleness_model.consistency(k) for k in ks},
            read_latency_ms={
                p: analytic.read_latency_percentile(p) for p in _REPORT_PERCENTILES
            },
            write_latency_ms={
                p: analytic.write_latency_percentile(p) for p in _REPORT_PERCENTILES
            },
            mode=mode,
            montecarlo_check=check,
        )
