"""Model-vs-simulation divergence under hostile conditions.

:func:`run_scenario` is the measurement core of the scenario matrix: it runs
the cluster simulator under a scenario's mutated conditions, runs the Monte
Carlo and analytic predictors under the scenario's *unmutated* base WARS
assumptions, and reports how far the predictions drift — per-probe |Δp| on
the consistency curve, staleness-curve RMSE, t-visibility shift, and latency
percentile N-RMSE.  For the benign ``baseline`` scenario the divergence is
the paper's §5.2 validation error (RMSE ≤ 1%); for hostile scenarios it
quantifies exactly what each violated assumption costs the model.

Sharding
--------
Scenario runs always use the blocked discipline of
:mod:`repro.analysis.validation`: writes split into independent blocks of
:data:`SCENARIO_BLOCK_WRITES`, one cluster per block, block seeds spawned
from a single root :class:`numpy.random.SeedSequence`, measurements merged
in block order.  The block structure depends only on ``writes``, so results
are **bit-for-bit identical for any worker count** — the property the
reduced-scale conformance tests pin.  Block specs ship only the scenario
*name* across process boundaries; workers re-resolve it from the registry.

Hostile events (partitions, crashes, churn) are scheduled per block at
fractions of the block horizon, so a sharded run experiences the hostile
condition in every block rather than once per run — which is also what keeps
serial and sharded runs identical.
"""

from __future__ import annotations

import math
import multiprocessing
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.analysis.staleness import (
    StalenessObservation,
    consistency_by_time,
    measured_t_visibility,
    observe_staleness,
    operation_latencies,
)
from repro.analysis.statistics import rmse
from repro.analysis.validation import _block_sizes, _root_entropy
from repro.analytic.predictor import AnalyticPredictor
from repro.cluster.client import WorkloadRunner
from repro.cluster.sampling import DEFAULT_DRAW_BATCH_SIZE
from repro.cluster.store import DynamoCluster
from repro.core.quorum import ReplicaConfig
from repro.core.wars import WARSModel
from repro.exceptions import PBSError, ScenarioError
from repro.kernels import jit_has_run, pin_worker_threads
from repro.latency.percentiles import normalized_rmse
from repro.scenarios.registry import Scenario, ScenarioContext, get_scenario

__all__ = [
    "ScenarioDivergence",
    "run_scenario",
    "run_scenario_matrix",
    "validate_divergence",
    "SCENARIO_BLOCK_WRITES",
    "DEFAULT_T_VISIBILITY_TARGETS",
]

#: Writes per independent simulation block in scenario runs.  Smaller than
#: the validation experiment's 5k blocks so hostile events (scheduled at
#: fractions of the block horizon) recur often enough to dominate mixing
#: time, and so 2k-write conformance tests still exercise multiple blocks.
SCENARIO_BLOCK_WRITES = 1_000

#: Consistency targets whose t-visibility shift is reported.
DEFAULT_T_VISIBILITY_TARGETS: tuple[float, ...] = (0.5, 0.9, 0.99)


@dataclass(frozen=True)
class ScenarioDivergence:
    """Structured divergence report for one scenario run.

    ``montecarlo_*`` fields compare the simulator against the WARS Monte
    Carlo predictor; ``analytic_*`` fields compare against the closed-form
    predictor and are ``None`` when the scenario's base distributions fall
    outside its i.i.d. domain.  ``t_visibility_shift_ms`` maps each target
    probability to ``measured − predicted`` t-visibility; a shift is ``None``
    (serialised ``null``) when the measured curve never reaches the target —
    hostile scenarios can plateau below it.
    """

    scenario: str
    description: str
    hostile: bool
    config: ReplicaConfig
    writes: int
    observations: int
    dropped_messages: int
    bin_centers_ms: tuple[float, ...]
    measured_consistency: tuple[float, ...]
    montecarlo_consistency: tuple[float, ...]
    analytic_consistency: tuple[float, ...] | None
    consistency_rmse: float
    max_abs_delta_p: float
    mean_abs_delta_p: float
    analytic_rmse: float | None
    analytic_max_abs_delta_p: float | None
    t_visibility_shift_ms: Mapping[float, float | None]
    read_latency_nrmse: float
    write_latency_nrmse: float

    def to_dict(self) -> dict:
        """JSON-safe representation (non-finite shifts become ``null``)."""
        return {
            "scenario": self.scenario,
            "description": self.description,
            "hostile": self.hostile,
            "config": {"n": self.config.n, "r": self.config.r, "w": self.config.w},
            "writes": self.writes,
            "observations": self.observations,
            "dropped_messages": self.dropped_messages,
            "bin_centers_ms": list(self.bin_centers_ms),
            "measured_consistency": list(self.measured_consistency),
            "montecarlo_consistency": list(self.montecarlo_consistency),
            "analytic_consistency": (
                None if self.analytic_consistency is None else list(self.analytic_consistency)
            ),
            "consistency_rmse": self.consistency_rmse,
            "max_abs_delta_p": self.max_abs_delta_p,
            "mean_abs_delta_p": self.mean_abs_delta_p,
            "analytic_rmse": self.analytic_rmse,
            "analytic_max_abs_delta_p": self.analytic_max_abs_delta_p,
            "t_visibility_shift_ms": {
                str(target): (shift if shift is not None and math.isfinite(shift) else None)
                for target, shift in self.t_visibility_shift_ms.items()
            },
            "read_latency_nrmse": self.read_latency_nrmse,
            "write_latency_nrmse": self.write_latency_nrmse,
        }

    def summary_lines(self) -> list[str]:
        """Human-readable divergence summary."""
        lines = [
            f"scenario: {self.scenario} ({'hostile' if self.hostile else 'benign'})",
            f"configuration: {self.config.label()}",
            f"staleness observations: {self.observations}",
            f"dropped messages: {self.dropped_messages}",
            f"consistency RMSE vs Monte Carlo: {self.consistency_rmse * 100:.2f}%",
            f"max |delta p|: {self.max_abs_delta_p * 100:.2f}%",
        ]
        if self.analytic_rmse is not None:
            lines.append(f"consistency RMSE vs analytic: {self.analytic_rmse * 100:.2f}%")
        for target, shift in self.t_visibility_shift_ms.items():
            rendered = (
                "unreached" if shift is None or not math.isfinite(shift) else f"{shift:+.2f} ms"
            )
            lines.append(f"t-visibility shift at p={target}: {rendered}")
        lines.append(f"read latency N-RMSE: {self.read_latency_nrmse * 100:.2f}%")
        lines.append(f"write latency N-RMSE: {self.write_latency_nrmse * 100:.2f}%")
        return lines


# ---------------------------------------------------------------------------
# Blocked measurement.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _ScenarioBlockSpec:
    """Picklable description of one scenario simulation block.

    Carries the scenario *name*, not the scenario: hooks are arbitrary
    callables, so workers re-resolve the registered object instead.
    """

    scenario_name: str
    config: ReplicaConfig
    writes: int
    seed: np.random.SeedSequence
    draw_batch_size: int
    trace_backend: str = "columnar"


def _run_scenario_block(
    spec: _ScenarioBlockSpec,
) -> tuple[list[StalenessObservation], np.ndarray, np.ndarray, int]:
    """Run one block's mutated cluster and extract its measurements."""
    scenario = get_scenario(spec.scenario_name)
    cluster_seed, context_seed = spec.seed.spawn(2)
    cluster = DynamoCluster(
        config=spec.config,
        distributions=scenario.distributions_for_cluster(),
        rng=np.random.default_rng(cluster_seed),
        draw_batch_size=spec.draw_batch_size,
        trace_backend=spec.trace_backend,
        **scenario.cluster_kwargs,
    )
    context = ScenarioContext(
        writes=spec.writes,
        write_interval_ms=scenario.write_interval_ms,
        read_offsets_ms=scenario.read_offsets_ms,
        horizon_ms=spec.writes * scenario.write_interval_ms,
        rng=np.random.default_rng(context_seed),
    )
    operations = scenario.build_operations(context)
    if scenario.setup is not None:
        scenario.setup(cluster, context)
    WorkloadRunner(cluster).run(operations)
    observations = observe_staleness(cluster.trace_log)
    measured_reads, measured_writes = operation_latencies(cluster.trace_log)
    return observations, measured_reads, measured_writes, cluster.network.dropped_messages


def _measure_scenario(
    scenario: Scenario,
    config: ReplicaConfig,
    writes: int,
    root: np.random.SeedSequence,
    block_writes: int,
    draw_batch_size: int,
    workers: int,
    trace_backend: str,
) -> tuple[list[StalenessObservation], np.ndarray, np.ndarray, int]:
    """Run the measured side as independent blocks, serially or on a pool."""
    sizes = _block_sizes(writes, block_writes)
    seeds = root.spawn(len(sizes))
    specs = [
        _ScenarioBlockSpec(
            scenario_name=scenario.name,
            config=config,
            writes=size,
            seed=seed,
            draw_batch_size=draw_batch_size,
            trace_backend=trace_backend,
        )
        for size, seed in zip(sizes, seeds)
    ]
    if workers > 1 and len(specs) > 1:
        # Same pool discipline as the validation experiment: pinned worker
        # thread pools, fork unless a JIT kernel has already run.
        if not jit_has_run() and "fork" in multiprocessing.get_all_start_methods():
            pool_context = multiprocessing.get_context("fork")
        else:
            pool_context = multiprocessing.get_context("spawn")
        with pool_context.Pool(
            processes=min(workers, len(specs)),
            initializer=pin_worker_threads,
            initargs=(workers,),
        ) as pool:
            results = pool.map(_run_scenario_block, specs, chunksize=1)
    else:
        results = [_run_scenario_block(spec) for spec in specs]

    observations: list[StalenessObservation] = []
    read_blocks: list[np.ndarray] = []
    write_blocks: list[np.ndarray] = []
    dropped = 0
    for block_observations, block_reads, block_writes_lat, block_dropped in results:
        observations.extend(block_observations)
        read_blocks.append(block_reads)
        write_blocks.append(block_writes_lat)
        dropped += block_dropped
    return observations, np.concatenate(read_blocks), np.concatenate(write_blocks), dropped


# ---------------------------------------------------------------------------
# The divergence harness.
# ---------------------------------------------------------------------------


def run_scenario(
    name: str,
    writes: int = 2_000,
    config: ReplicaConfig | None = None,
    prediction_trials: int = 100_000,
    latency_percentiles: Sequence[float] = tuple(float(p) for p in range(1, 100)),
    bin_width_ms: float = 5.0,
    t_visibility_targets: Sequence[float] = DEFAULT_T_VISIBILITY_TARGETS,
    rng: np.random.Generator | int | None = 0,
    workers: int | None = None,
    block_writes: int | None = None,
    draw_batch_size: int = DEFAULT_DRAW_BATCH_SIZE,
    trace_backend: str = "columnar",
) -> ScenarioDivergence:
    """Run one registered scenario and report model-vs-simulation divergence.

    The simulator runs under the scenario's mutated conditions; both
    predictors run under the scenario's unmutated ``base_distributions``.
    Unlike :func:`~repro.analysis.validation.run_validation`, the blocked
    path is *always* used (``workers=None`` simply runs the blocks serially),
    so output is bit-for-bit identical for any worker count by construction.

    Args:
        name: A registered scenario name (see
            :func:`repro.scenarios.registry.scenario_names`).
        writes: Total writes across all blocks (the paper's §5.2 scale is
            50,000; conformance tests use 2,000).
        config: Replication configuration; defaults to the paper's
            ``N=3, R=1, W=1`` validation cell.
        workers: Block-level process parallelism (``None`` or ``1`` = serial).
        block_writes: Override :data:`SCENARIO_BLOCK_WRITES`.
        trace_backend: ``"columnar"`` (default) or ``"object"`` trace storage
            for the block clusters; both yield identical divergence reports.
    """
    scenario = get_scenario(name)
    if config is None:
        config = ReplicaConfig(n=3, r=1, w=1)
    if writes < 10:
        raise ScenarioError(f"at least 10 writes are required, got {writes}")
    if workers is not None and workers < 1:
        raise ScenarioError(f"workers must be >= 1, got {workers}")
    if block_writes is not None and block_writes < 10:
        raise ScenarioError(f"block_writes must be >= 10, got {block_writes}")

    root = np.random.SeedSequence(_root_entropy(rng))
    # Dedicated predictor child before the block seeds, mirroring
    # run_validation, so measured and predicted streams are independent.
    predictor_seed, blocks_root = root.spawn(2)
    observations, measured_reads, measured_writes, dropped = _measure_scenario(
        scenario=scenario,
        config=config,
        writes=writes,
        root=blocks_root,
        block_writes=block_writes or SCENARIO_BLOCK_WRITES,
        draw_batch_size=draw_batch_size,
        workers=workers or 1,
        trace_backend=trace_backend,
    )
    if not observations:
        raise ScenarioError(
            f"scenario {name!r} produced no staleness observations"
        )

    # --- Predicted side: unmutated WARS assumptions. ---
    base = scenario.base_distributions()
    predicted = WARSModel(distributions=base, config=config).sample(
        prediction_trials, np.random.default_rng(predictor_seed)
    )
    try:
        analytic = AnalyticPredictor(distributions=base).result(config)
    except PBSError:
        # Per-replica (non-i.i.d.) base distributions stay Monte Carlo only.
        analytic = None

    # --- Consistency curves at the populated measurement bins. ---
    max_t = max(obs.t_since_commit_ms for obs in observations)
    bin_edges = np.arange(0.0, max_t + bin_width_ms, bin_width_ms)
    if bin_edges.size < 2:
        bin_edges = np.array([0.0, max(max_t, bin_width_ms)])
    binned = consistency_by_time(observations, bin_edges)
    centers: list[float] = []
    measured_curve: list[float] = []
    montecarlo_curve: list[float] = []
    analytic_curve: list[float] = []
    for center, fraction, count in zip(binned.bin_centers, binned.fractions, binned.counts):
        if count == 0 or not np.isfinite(fraction):
            continue
        probe_t = max(center, 0.0)
        centers.append(center)
        measured_curve.append(fraction)
        montecarlo_curve.append(predicted.consistency_probability(probe_t))
        if analytic is not None:
            analytic_curve.append(analytic.consistency_probability(probe_t))
    if not centers:
        raise ScenarioError("no populated time bins; widen the bins or add reads")

    deltas = np.abs(np.asarray(montecarlo_curve) - np.asarray(measured_curve))
    if analytic is not None:
        analytic_deltas = np.abs(np.asarray(analytic_curve) - np.asarray(measured_curve))
        analytic_rmse = rmse(analytic_curve, measured_curve)
        analytic_max_delta = float(np.max(analytic_deltas))
    else:
        analytic_rmse = None
        analytic_max_delta = None

    # --- t-visibility shift (measured minus predicted) per target. ---
    shifts: dict[float, float | None] = {}
    for target in t_visibility_targets:
        measured_t = measured_t_visibility(observations, target)
        predicted_t = predicted.t_visibility(target)
        if math.isfinite(measured_t) and math.isfinite(predicted_t):
            shifts[float(target)] = float(measured_t - predicted_t)
        else:
            shifts[float(target)] = None

    # --- Operation latency percentile divergence. ---
    percentile_list = list(latency_percentiles)
    predicted_reads = [predicted.read_latency_percentile(p) for p in percentile_list]
    predicted_writes = [predicted.write_latency_percentile(p) for p in percentile_list]
    measured_read_pct = list(np.percentile(measured_reads, percentile_list))
    measured_write_pct = list(np.percentile(measured_writes, percentile_list))

    return ScenarioDivergence(
        scenario=scenario.name,
        description=scenario.description,
        hostile=scenario.hostile,
        config=config,
        writes=writes,
        observations=len(observations),
        dropped_messages=dropped,
        bin_centers_ms=tuple(centers),
        measured_consistency=tuple(measured_curve),
        montecarlo_consistency=tuple(montecarlo_curve),
        analytic_consistency=tuple(analytic_curve) if analytic is not None else None,
        consistency_rmse=rmse(montecarlo_curve, measured_curve),
        max_abs_delta_p=float(np.max(deltas)),
        mean_abs_delta_p=float(np.mean(deltas)),
        analytic_rmse=analytic_rmse,
        analytic_max_abs_delta_p=analytic_max_delta,
        t_visibility_shift_ms=shifts,
        read_latency_nrmse=normalized_rmse(predicted_reads, measured_read_pct),
        write_latency_nrmse=normalized_rmse(predicted_writes, measured_write_pct),
    )


def run_scenario_matrix(
    names: Sequence[str] | None = None,
    **kwargs,
) -> dict[str, ScenarioDivergence]:
    """Run several scenarios (default: all registered) with shared settings.

    Keyword arguments are forwarded to :func:`run_scenario`.  With an integer
    ``rng`` every scenario reuses the same root seed (each is reproducible in
    isolation); with a shared generator each scenario consumes one draw, so
    the matrix as a whole is reproducible instead.
    """
    from repro.scenarios.registry import scenario_names

    selected = list(names) if names is not None else scenario_names()
    return {name: run_scenario(name, **kwargs) for name in selected}


# ---------------------------------------------------------------------------
# Report schema validation.
# ---------------------------------------------------------------------------

_REQUIRED_SCALARS = (
    ("consistency_rmse", float),
    ("max_abs_delta_p", float),
    ("mean_abs_delta_p", float),
    ("read_latency_nrmse", float),
    ("write_latency_nrmse", float),
)


def validate_divergence(payload: Mapping) -> None:
    """Check a :meth:`ScenarioDivergence.to_dict` payload against the schema.

    Raises :class:`~repro.exceptions.ScenarioError` on any violation:
    missing keys, non-finite divergence metrics, probability values outside
    [0, 1], or mismatched curve lengths.  t-visibility shifts may be ``null``
    (target unreached) but must be finite floats otherwise.
    """
    required = {
        "scenario",
        "description",
        "hostile",
        "config",
        "writes",
        "observations",
        "dropped_messages",
        "bin_centers_ms",
        "measured_consistency",
        "montecarlo_consistency",
        "analytic_consistency",
        "consistency_rmse",
        "max_abs_delta_p",
        "mean_abs_delta_p",
        "analytic_rmse",
        "analytic_max_abs_delta_p",
        "t_visibility_shift_ms",
        "read_latency_nrmse",
        "write_latency_nrmse",
    }
    missing = required - set(payload)
    if missing:
        raise ScenarioError(f"divergence payload missing keys: {sorted(missing)}")
    for key, kind in _REQUIRED_SCALARS:
        value = payload[key]
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ScenarioError(f"{key} must be numeric, got {value!r}")
        if not math.isfinite(float(value)):
            raise ScenarioError(f"{key} must be finite, got {value!r}")
    for key in ("writes", "observations", "dropped_messages"):
        value = payload[key]
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            raise ScenarioError(f"{key} must be a non-negative integer, got {value!r}")
    config = payload["config"]
    if not isinstance(config, Mapping) or set(config) != {"n", "r", "w"}:
        raise ScenarioError(f"config must map exactly n/r/w, got {config!r}")
    centers = payload["bin_centers_ms"]
    curves = [("measured_consistency", True), ("montecarlo_consistency", True)]
    if payload["analytic_consistency"] is not None:
        curves.append(("analytic_consistency", True))
    for key, _ in curves:
        curve = payload[key]
        if len(curve) != len(centers):
            raise ScenarioError(
                f"{key} length {len(curve)} != bin_centers_ms length {len(centers)}"
            )
        for value in curve:
            if not 0.0 <= float(value) <= 1.0:
                raise ScenarioError(f"{key} contains out-of-range probability {value!r}")
    shifts = payload["t_visibility_shift_ms"]
    if not isinstance(shifts, Mapping) or not shifts:
        raise ScenarioError("t_visibility_shift_ms must be a non-empty mapping")
    for target, shift in shifts.items():
        if shift is None:
            continue
        if not isinstance(shift, (int, float)) or not math.isfinite(float(shift)):
            raise ScenarioError(
                f"t-visibility shift at {target!r} must be finite or null, got {shift!r}"
            )
