"""Built-in hostile-conditions scenarios.

Each scenario below relaxes exactly one of the assumptions the paper's §5.2
validation holds fixed, so its divergence report isolates that assumption's
contribution to model error:

``baseline``
    No departure at all — the PR 5 validation cell.  Pins the harness itself:
    its consistency RMSE must stay within the paper's error envelope (≤ 1%).
``zipfian-skew``
    YCSB-style Zipfian key choice with overlapping writes per hot key,
    violating the one-outstanding-write-per-key assumption.
``partition``
    A coordinator↔replica network partition for a third of each block,
    violating always-connected replicas.
``message-loss``
    5% independent per-message drop probability, violating reliable delivery.
``wan-topology``
    One local replica, two behind a WAN hop (per-replica latencies), while
    the predictors keep assuming i.i.d. replicas.
``anti-entropy``
    Read repair + hinted handoff + periodic Merkle exchange under moderate
    loss — extra convergence channels the conservative WARS model omits.
``membership-churn``
    Ring rebalancing mid-run: a node joins, another leaves, remapping
    preference lists under the workload.
``crash-recovery``
    A fail-stop replica crash with recovery mid-block, the paper's §6
    failure-mode discussion made concrete.
``gray-failure``
    Cluster-wide slow-but-alive degradation: every leg runs 4x slow from
    5 s onward via a :class:`~repro.faults.plan.FaultPlan` — the failure
    mode fail-stop injection cannot express (nothing crashes, nothing is
    partitioned, everything is just slow).
``correlated-bursts``
    A seeded Markov-modulated ON/OFF burst process multiplies all legs
    during ON epochs, violating the i.i.d. latency assumption with
    correlated slow periods.

All hooks and factories are module-level functions so sharded runs can
resolve the scenario by name inside worker processes (see
:mod:`repro.scenarios.registry`).  Every event-scheduling hook places events
at *fractions of the block horizon*, keeping scenarios meaningful at both
test scale (2k writes) and paper scale (50k writes).
"""

from __future__ import annotations

from repro.cluster.store import DynamoCluster
from repro.faults.plan import BurstProcess, FaultPlan, GrayFailure
from repro.latency.composite import wan_replica_model
from repro.latency.distributions import ExponentialLatency
from repro.latency.production import WARSDistributions
from repro.scenarios.registry import (
    SCENARIO_KEY,
    Scenario,
    ScenarioContext,
    register_scenario,
)
from repro.workloads.keys import ZipfianKeys
from repro.workloads.operations import Operation
from repro.workloads.ycsb import skewed_validation_workload

__all__: list[str] = []

#: The benign §5.2 cell every scenario's predictors assume: exponential
#: write-leg mean 20 ms, shared A=R=S mean 10 ms (the grid's first cell).
BASE_W_MEAN_MS = 20.0
BASE_ARS_MEAN_MS = 10.0

#: One-way WAN hop added to remote replicas in ``wan-topology``.  Kept small
#: relative to the paper's 75 ms so the staleness curve stays inside the
#: default probe window.
WAN_DELAY_MS = 15.0

#: Keyspace and skew for ``zipfian-skew`` (YCSB's default theta).
SKEW_KEYSPACE = 16
SKEW_THETA = 0.99

#: Gray-failure onset for the ``gray-failure`` scenario: the whole cluster
#: (think degraded top-of-rack switch or a NIC renegotiated to a lower link
#: speed) runs 4x slow from 5 s onward, open-ended.  Expressed in absolute
#: simulated ms — every block starts at ``t = 0``, so serial and sharded
#: runs see identical onsets.  The write interval is widened and the read
#: offsets stretched so the slowed cluster still satisfies the predictors'
#: one-outstanding-write assumption and the probe grid spans the slowed
#: staleness curve: the scenario isolates the *marginal latency* violation,
#: which is exactly what the adaptive-recovery loop
#: (:func:`repro.faults.recovery.run_adaptive_recovery`) can win back.
GRAY_MULTIPLIER = 4.0
GRAY_START_MS = 5_000.0
GRAY_WRITE_INTERVAL_MS = 200.0
GRAY_READ_OFFSETS_MS = (1.0, 2.0, 5.0, 10.0, 20.0, 40.0, 80.0, 120.0, 160.0)

#: Burst process for ``correlated-bursts``: all nodes, all legs, 6x during
#: ON epochs (mean 1.5 s) separated by OFF epochs (mean 4.5 s).  The epoch
#: timeline comes from the plan's private seed, so every block replays the
#: same correlated slow periods.
BURST_SEED = 13
BURST_MULTIPLIER = 6.0
BURST_MEAN_ON_MS = 1_500.0
BURST_MEAN_OFF_MS = 4_500.0

#: The frozen plans carried in ``cluster_kwargs`` — immutable, so sharing
#: one instance across blocks and worker processes is safe (each cluster's
#: network builds a private runtime from it).
GRAY_FAILURE_PLAN = FaultPlan(
    name="gray-failure",
    gray_failures=(
        GrayFailure(multiplier=GRAY_MULTIPLIER, start_ms=GRAY_START_MS),
    ),
)

CORRELATED_BURSTS_PLAN = FaultPlan(
    name="correlated-bursts",
    bursts=(
        BurstProcess(
            seed=BURST_SEED,
            on_multiplier=BURST_MULTIPLIER,
            mean_on_ms=BURST_MEAN_ON_MS,
            mean_off_ms=BURST_MEAN_OFF_MS,
        ),
    ),
)


def benign_distributions() -> WARSDistributions:
    """The unmutated WARS model every scenario's predictors assume."""
    return WARSDistributions.write_specialised(
        write=ExponentialLatency.from_mean(BASE_W_MEAN_MS),
        other=ExponentialLatency.from_mean(BASE_ARS_MEAN_MS),
        name="benign",
    )


def wan_distributions() -> WARSDistributions:
    """Per-replica WAN latencies: one local replica, the rest one hop away."""
    return WARSDistributions(
        w=wan_replica_model(
            ExponentialLatency.from_mean(BASE_W_MEAN_MS), 3, wan_delay_ms=WAN_DELAY_MS
        ),
        a=wan_replica_model(
            ExponentialLatency.from_mean(BASE_ARS_MEAN_MS), 3, wan_delay_ms=WAN_DELAY_MS
        ),
        r=wan_replica_model(
            ExponentialLatency.from_mean(BASE_ARS_MEAN_MS), 3, wan_delay_ms=WAN_DELAY_MS
        ),
        s=wan_replica_model(
            ExponentialLatency.from_mean(BASE_ARS_MEAN_MS), 3, wan_delay_ms=WAN_DELAY_MS
        ),
        name="wan",
    )


# ---------------------------------------------------------------------------
# Setup hooks (cluster mutators).
# ---------------------------------------------------------------------------


def partition_setup(cluster: DynamoCluster, context: ScenarioContext) -> None:
    """Partition the coordinator from one replica for 30%–60% of the block."""
    victim = cluster.replicas_for(SCENARIO_KEY)[-1].node_id
    coordinator = cluster.coordinators[0].coordinator_id
    cluster.simulator.schedule_at(
        0.30 * context.horizon_ms,
        lambda: cluster.network.partition(coordinator, victim),
        label="scenario:partition",
    )
    cluster.simulator.schedule_at(
        0.60 * context.horizon_ms,
        lambda: cluster.network.heal(coordinator, victim),
        label="scenario:heal",
    )


def anti_entropy_setup(cluster: DynamoCluster, context: ScenarioContext) -> None:
    """Run Merkle exchange rounds over the whole block, stopping at the horizon.

    The controller must be stopped explicitly: its rounds reschedule
    themselves, and the workload runner's final drain would otherwise never
    see an empty event queue.
    """
    controller = cluster.enable_merkle_anti_entropy(interval_ms=250.0, pairs_per_round=1)
    cluster.simulator.schedule_at(
        context.horizon_ms, controller.stop, label="scenario:anti-entropy-stop"
    )


def churn_setup(cluster: DynamoCluster, context: ScenarioContext) -> None:
    """Rebalance the ring mid-run: one node joins at 35%, another leaves at 65%."""
    cluster.simulator.schedule_at(
        0.35 * context.horizon_ms,
        lambda: cluster.membership.add_node("node-joiner"),
        label="scenario:join",
    )
    cluster.simulator.schedule_at(
        0.65 * context.horizon_ms,
        lambda: cluster.membership.remove_node("node-4"),
        label="scenario:leave",
    )


def crash_setup(cluster: DynamoCluster, context: ScenarioContext) -> None:
    """Fail-stop one replica of the scenario key at 25%, recover it at 55%."""
    victim = cluster.replicas_for(SCENARIO_KEY)[-1].node_id
    cluster.failure_injector.schedule_crash(
        victim,
        at_ms=0.25 * context.horizon_ms,
        downtime_ms=0.30 * context.horizon_ms,
    )


# ---------------------------------------------------------------------------
# Workload factories.
# ---------------------------------------------------------------------------


def skewed_workload(context: ScenarioContext) -> list[Operation]:
    """Zipfian-key overwrite workload; hot keys get back-to-back racing writes."""
    return skewed_validation_workload(
        keys=ZipfianKeys(SKEW_KEYSPACE, theta=SKEW_THETA),
        writes=context.writes,
        write_interval_ms=context.write_interval_ms,
        read_offsets_ms=context.read_offsets_ms,
        rng=context.rng,
    )


# ---------------------------------------------------------------------------
# Registrations.
# ---------------------------------------------------------------------------

register_scenario(
    Scenario(
        name="baseline",
        description="Benign §5.2 cell (W mean 20 ms, A=R=S mean 10 ms); pins the harness",
        base_distributions=benign_distributions,
        hostile=False,
    )
)

register_scenario(
    Scenario(
        name="zipfian-skew",
        description="Zipfian key skew with overlapping per-key writes (YCSB theta 0.99)",
        base_distributions=benign_distributions,
        workload=skewed_workload,
        write_interval_ms=25.0,
        read_offsets_ms=(1.0, 2.0, 5.0, 10.0, 20.0),
    )
)

register_scenario(
    Scenario(
        name="partition",
        description="Coordinator-replica partition over 30%-60% of each block",
        base_distributions=benign_distributions,
        setup=partition_setup,
    )
)

register_scenario(
    Scenario(
        name="message-loss",
        description="5% independent per-message drop probability",
        base_distributions=benign_distributions,
        cluster_kwargs={"loss_probability": 0.05},
    )
)

register_scenario(
    Scenario(
        name="wan-topology",
        description="One local replica, two behind a 15 ms WAN hop (per-replica latencies)",
        base_distributions=benign_distributions,
        cluster_distributions=wan_distributions,
    )
)

register_scenario(
    Scenario(
        name="anti-entropy",
        description="Read repair + hinted handoff + 250 ms Merkle exchange under 3% loss",
        base_distributions=benign_distributions,
        cluster_kwargs={
            "read_repair": True,
            "hinted_handoff": True,
            "loss_probability": 0.03,
        },
        setup=anti_entropy_setup,
    )
)

register_scenario(
    Scenario(
        name="membership-churn",
        description="Mid-run ring rebalancing: a node joins at 35%, another leaves at 65%",
        base_distributions=benign_distributions,
        cluster_kwargs={"node_count": 5},
        setup=churn_setup,
    )
)

register_scenario(
    Scenario(
        name="crash-recovery",
        description="Fail-stop replica crash at 25% of the block, recovery at 55%",
        base_distributions=benign_distributions,
        setup=crash_setup,
    )
)

register_scenario(
    Scenario(
        name="gray-failure",
        description="Cluster-wide 4x slow-but-alive degradation from 5 s onward",
        base_distributions=benign_distributions,
        cluster_kwargs={"fault_plan": GRAY_FAILURE_PLAN},
        write_interval_ms=GRAY_WRITE_INTERVAL_MS,
        read_offsets_ms=GRAY_READ_OFFSETS_MS,
    )
)

register_scenario(
    Scenario(
        name="correlated-bursts",
        description="Markov-modulated 6x latency bursts (mean ON 1.5 s, OFF 4.5 s)",
        base_distributions=benign_distributions,
        cluster_kwargs={"fault_plan": CORRELATED_BURSTS_PLAN},
    )
)
