"""Hostile-conditions scenario matrix.

The paper's §5.2 validation holds everything except the latency
distributions constant; this package opens that scenario space.  A
:class:`~repro.scenarios.registry.Scenario` declares one departure from the
benign validation conditions (key skew, partitions, message loss, WAN
topologies, anti-entropy, churn, crashes), and
:func:`~repro.scenarios.divergence.run_scenario` measures how far the WARS
model's predictions drift when the simulated cluster deviates while the
predictors keep the paper's assumptions.

Importing this package registers the built-in scenarios
(:mod:`repro.scenarios.definitions`); registry look-ups load them lazily as
well, so ``get_scenario("partition")`` works from a cold start.
"""

from repro.scenarios.divergence import (
    DEFAULT_T_VISIBILITY_TARGETS,
    SCENARIO_BLOCK_WRITES,
    ScenarioDivergence,
    run_scenario,
    run_scenario_matrix,
    validate_divergence,
)
from repro.scenarios.registry import (
    DEFAULT_READ_OFFSETS_MS,
    SCENARIO_KEY,
    Scenario,
    ScenarioContext,
    get_scenario,
    list_scenarios,
    register_scenario,
    scenario_names,
)

__all__ = [
    "Scenario",
    "ScenarioContext",
    "ScenarioDivergence",
    "register_scenario",
    "get_scenario",
    "list_scenarios",
    "scenario_names",
    "run_scenario",
    "run_scenario_matrix",
    "validate_divergence",
    "SCENARIO_BLOCK_WRITES",
    "SCENARIO_KEY",
    "DEFAULT_READ_OFFSETS_MS",
    "DEFAULT_T_VISIBILITY_TARGETS",
]
