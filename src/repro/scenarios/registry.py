"""The hostile-conditions scenario registry.

The paper validates the WARS model only under benign, fixed conditions: one
key, i.i.d. replicas, no partitions, no churn, no anti-entropy (§5.2).  A
:class:`Scenario` names one *departure* from those assumptions — a cluster
configuration mutator plus (optionally) a workload mutator — so the
divergence harness (:mod:`repro.scenarios.divergence`) can run the simulator
under the hostile condition while the analytic and Monte Carlo predictors
keep assuming the benign WARS environment, and report how far the model's
predictions degrade.

Scenarios are registered by name in a module-level registry (mirroring
:mod:`repro.experiments.registry`), which is what gives every scenario a CLI
path (``pbs-repro run scenario --name <name>``), a pinned reduced-scale
conformance test, and a divergence trajectory line in ``BENCH_sweep.json``.

Sharded runs resolve scenarios *by name* inside worker processes, so a
scenario that should run under ``workers > 1`` must be registered at import
time of :mod:`repro.scenarios` (the built-in definitions are; ad-hoc
scenarios registered in a script work serially and under fork pools, but a
spawn pool — used once a JIT kernel has run — re-imports and would not see
them).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence, TYPE_CHECKING

import numpy as np

from repro.exceptions import ScenarioError
from repro.latency.production import WARSDistributions
from repro.workloads.operations import Operation, validation_workload

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (store imports nothing here)
    from repro.cluster.store import DynamoCluster

__all__ = [
    "Scenario",
    "ScenarioContext",
    "register_scenario",
    "get_scenario",
    "list_scenarios",
    "scenario_names",
    "DEFAULT_READ_OFFSETS_MS",
    "SCENARIO_KEY",
]

#: Read offsets (ms after each write) used by scenario workloads unless a
#: scenario overrides them — the §5.2 validation offsets.
DEFAULT_READ_OFFSETS_MS: tuple[float, ...] = (1.0, 2.0, 5.0, 10.0, 20.0, 40.0, 60.0, 80.0)

#: The key overwritten by single-key scenario workloads.
SCENARIO_KEY = "scenario-key"


@dataclass(frozen=True)
class ScenarioContext:
    """Per-block runtime facts handed to a scenario's hooks.

    The divergence harness runs each scenario as independent *blocks* of
    writes (one simulated cluster per block, merged in block order — the
    validation experiment's sharding discipline), so hostile conditions are
    expressed relative to the block: ``horizon_ms`` is the block's workload
    duration and hooks that schedule events (partitions, crashes, churn)
    should place them at fractions of it.  ``rng`` is a scenario-dedicated
    stream spawned from the block seed — consuming it never perturbs the
    cluster's or the workload's draws.
    """

    #: Writes issued in this block.
    writes: int
    #: Milliseconds between consecutive writes.
    write_interval_ms: float
    #: Read offsets after each write (ms).
    read_offsets_ms: tuple[float, ...]
    #: Duration of the block's workload (``writes * write_interval_ms``).
    horizon_ms: float
    #: Scenario-dedicated random stream (block-seeded, deterministic).
    rng: np.random.Generator


#: Builds the latency model the *cluster* actually experiences.  A factory
#: (rather than a stored instance) so per-block networks never share
#: distribution state and frozen scenario objects stay picklable by name.
DistributionFactory = Callable[[], WARSDistributions]

#: Mutates one freshly built cluster before its block runs (install
#: partitions, schedule crashes or churn, enable anti-entropy, ...).
SetupHook = Callable[["DynamoCluster", ScenarioContext], None]

#: Builds the block's operation stream; ``None`` means the §5.2 single-key
#: overwrite workload.
WorkloadFactory = Callable[[ScenarioContext], Sequence[Operation]]


@dataclass(frozen=True)
class Scenario:
    """One named departure from the paper's benign validation conditions.

    Attributes
    ----------
    name / description:
        Stable identifier (CLI, tests, BENCH lines) and a one-line summary.
    base_distributions:
        Factory for the WARS distributions the *predictors* assume.  The
        measured-vs-predicted comparison is only meaningful because this is
        held fixed while the cluster deviates.
    cluster_distributions:
        Factory for the latency model the cluster actually experiences
        (defaults to ``base_distributions`` — the deviation then comes from
        ``cluster_kwargs``/``setup``/``workload`` instead).
    cluster_kwargs:
        Extra :class:`~repro.cluster.store.DynamoCluster` keyword arguments
        (``loss_probability``, ``read_repair``, ``node_count``, ...).
    setup:
        Optional per-block mutator run after cluster construction and before
        the workload (schedule partitions, crashes, ring churn, enable
        anti-entropy).
    workload:
        Optional workload mutator; ``None`` uses the single-key §5.2
        overwrite stream.
    write_interval_ms / read_offsets_ms:
        Workload cadence; scenarios that stress write overlap shrink the
        interval.
    hostile:
        ``False`` only for the benign baseline, which must reproduce the
        PR 5 validation cell.
    """

    name: str
    description: str
    base_distributions: DistributionFactory
    cluster_distributions: DistributionFactory | None = None
    cluster_kwargs: Mapping[str, object] = field(default_factory=dict)
    setup: SetupHook | None = None
    workload: WorkloadFactory | None = None
    write_interval_ms: float = 100.0
    read_offsets_ms: tuple[float, ...] = DEFAULT_READ_OFFSETS_MS
    hostile: bool = True

    def __post_init__(self) -> None:
        if not self.name or any(ch.isspace() for ch in self.name):
            raise ScenarioError(
                f"scenario names must be non-empty and whitespace-free, got {self.name!r}"
            )
        if self.write_interval_ms <= 0:
            raise ScenarioError(
                f"write interval must be positive, got {self.write_interval_ms}"
            )
        if not self.read_offsets_ms or min(self.read_offsets_ms) < 0:
            raise ScenarioError("read offsets must be non-empty and non-negative")

    def distributions_for_cluster(self) -> WARSDistributions:
        """The latency model driving the simulated cluster's messages."""
        factory = self.cluster_distributions or self.base_distributions
        return factory()

    def build_operations(self, context: ScenarioContext) -> list[Operation]:
        """The block's operation stream (scenario-specific or the §5.2 default)."""
        if self.workload is not None:
            return list(self.workload(context))
        return validation_workload(
            key=SCENARIO_KEY,
            writes=context.writes,
            write_interval_ms=context.write_interval_ms,
            read_offsets_ms=context.read_offsets_ms,
        )


_REGISTRY: dict[str, Scenario] = {}


def register_scenario(scenario: Scenario) -> Scenario:
    """Add a scenario to the registry; names must be unique."""
    if scenario.name in _REGISTRY:
        raise ScenarioError(f"scenario {scenario.name!r} is already registered")
    _REGISTRY[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    """Look up one scenario by name."""
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError as exc:
        known = ", ".join(sorted(_REGISTRY))
        raise ScenarioError(
            f"unknown scenario {name!r}; registered scenarios: {known}"
        ) from exc


def list_scenarios() -> list[Scenario]:
    """Every registered scenario, in registration order."""
    _ensure_loaded()
    return list(_REGISTRY.values())


def scenario_names() -> list[str]:
    """Registered scenario names, in registration order."""
    _ensure_loaded()
    return list(_REGISTRY)


def _ensure_loaded() -> None:
    """Import the built-in definitions so their registrations run."""
    # Imported lazily to avoid a cycle (definitions import this module).
    from repro.scenarios import definitions  # noqa: F401
