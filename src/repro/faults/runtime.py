"""Per-cluster execution state for a :class:`~repro.faults.plan.FaultPlan`.

The plan is immutable and shared (scenario objects carry one in their
``cluster_kwargs``); the runtime is mutable and private to one
:class:`~repro.cluster.network.Network`.  Modulation happens *after* a value
has been drawn from the batched buffers:

    draw (consumes the shared generator)  →  modulate (pure arithmetic)

so a fault plan never changes how many draws are consumed, which is the
invariant the serial ≡ sharded conformance and the draw-accounting property
suite pin.

Burst epochs come from a private ``numpy`` generator seeded by the plan;
they are advanced lazily as simulated time grows.  The simulator dispatches
events in non-decreasing time order and delay draws happen during dispatch,
so the clock observed here is monotonic and the lazy advance is exact.
"""

from __future__ import annotations

import numpy as np

from repro.faults.plan import WARS_LEGS, BurstProcess, FaultPlan, GrayFailure

__all__ = ["FaultRuntime"]


class _BurstState:
    """One burst process's epoch machine (private generator, lazy advance)."""

    __slots__ = ("multiplier", "on", "next_toggle_ms", "_mean_on", "_mean_off", "_rng")

    def __init__(self, spec: BurstProcess) -> None:
        self.multiplier = float(spec.on_multiplier)
        self.on = bool(spec.start_on)
        self._mean_on = float(spec.mean_on_ms)
        self._mean_off = float(spec.mean_off_ms)
        self._rng = np.random.default_rng(spec.seed)
        first_mean = self._mean_on if self.on else self._mean_off
        self.next_toggle_ms = float(self._rng.exponential(first_mean))

    def active(self, now_ms: float) -> bool:
        while now_ms >= self.next_toggle_ms:
            self.on = not self.on
            mean = self._mean_on if self.on else self._mean_off
            self.next_toggle_ms += float(self._rng.exponential(mean))
        return self.on


class FaultRuntime:
    """Applies a plan's time-varying multipliers to drawn delays."""

    __slots__ = ("_clock", "_grays", "_bursts", "modulated_draws")

    def __init__(self, plan: FaultPlan, clock) -> None:
        self._clock = clock
        # Per-leg dispatch tables so the hot path only walks faults that
        # actually target the leg being drawn.  Node filters become
        # frozensets once, here; ``None`` means "every node".
        self._grays: dict[str, list[tuple[GrayFailure, frozenset[str] | None]]] = {
            leg: [] for leg in WARS_LEGS
        }
        self._bursts: dict[str, list[tuple[_BurstState, frozenset[str] | None]]] = {
            leg: [] for leg in WARS_LEGS
        }
        for gray in plan.gray_failures:
            nodes = frozenset(gray.nodes) if gray.nodes else None
            for leg in gray.legs:
                self._grays[leg].append((gray, nodes))
        for burst in plan.bursts:
            nodes = frozenset(burst.nodes) if burst.nodes else None
            state = _BurstState(burst)
            for leg in burst.legs:
                self._bursts[leg].append((state, nodes))
        #: Draws whose value was actually changed (instrumentation).
        self.modulated_draws = 0

    def modulate(self, leg: str, replica: str, value: float) -> float:
        """Scale one drawn delay by every fault active right now.

        Pure arithmetic on the already-drawn value: no generator access, no
        draw consumption.  Multiple active faults compose multiplicatively.
        """
        now_ms = self._clock.now_ms
        scaled = value
        for gray, nodes in self._grays[leg]:
            if nodes is not None and replica not in nodes:
                continue
            if gray.active_at(now_ms):
                factor = gray.multiplier
                if gray.tail_threshold_ms is not None and value > gray.tail_threshold_ms:
                    factor *= gray.tail_multiplier
                scaled *= factor
        for state, nodes in self._bursts[leg]:
            if nodes is not None and replica not in nodes:
                continue
            if state.active(now_ms):
                scaled *= state.multiplier
        if scaled != value:
            self.modulated_draws += 1
        return scaled
