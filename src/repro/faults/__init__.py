"""Deterministic fault injection and the adaptive-recovery closed loop.

Two halves:

* :mod:`repro.faults.plan` / :mod:`repro.faults.runtime` — declarative
  :class:`FaultPlan` specs (:class:`GrayFailure`, :class:`BurstProcess`)
  injected via ``DynamoCluster(fault_plan=...)``, modulating network delay
  draws on a schedule without consuming extra generator draws.
* :mod:`repro.faults.recovery` — the closed loop: harvest per-leg W/A/R/S
  observations from a hostile run's trace log, stream them into a
  :class:`~repro.serving.service.PredictorService` tenant in timed windows,
  refit, and report a :class:`RecoveryTrajectory` quantifying how much of
  the static model's divergence an adaptive predictor recovers.

``recovery`` is imported lazily: the plan/runtime layer sits *below*
:mod:`repro.cluster` (the network imports it), while the recovery loop sits
*above* :mod:`repro.scenarios` and :mod:`repro.serving`; a lazy import keeps
``cluster → faults.plan`` free of the cycle.
"""

from __future__ import annotations

from repro.faults.plan import WARS_LEGS, BurstProcess, FaultPlan, GrayFailure
from repro.faults.runtime import FaultRuntime

__all__ = [
    "WARS_LEGS",
    "BurstProcess",
    "FaultPlan",
    "GrayFailure",
    "FaultRuntime",
    "LegSample",
    "RecoveryTrajectory",
    "RecoveryWindow",
    "harvest_wars_observations",
    "run_adaptive_recovery",
]

_RECOVERY_EXPORTS = (
    "LegSample",
    "RecoveryTrajectory",
    "RecoveryWindow",
    "harvest_wars_observations",
    "run_adaptive_recovery",
)


def __getattr__(name: str):
    if name in _RECOVERY_EXPORTS:
        from repro.faults import recovery

        return getattr(recovery, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
