"""Declarative fault plans: gray failures and correlated latency bursts.

The scenario registry (:mod:`repro.scenarios`) mutates clusters through the
seams :class:`~repro.cluster.store.DynamoCluster` already exposes — dead
links, lost messages, crashed nodes.  ROADMAP item 2 names the failure modes
that seam cannot express: *gray failures*, where a replica is slow but alive,
and *correlated bursts*, where latencies stop being i.i.d. and arrive in
epochs.  A :class:`FaultPlan` describes those conditions declaratively:

* :class:`GrayFailure` — a per-node latency multiplier (plus optional tail
  inflation) active on a deterministic schedule, optionally periodic.
* :class:`BurstProcess` — a seeded Markov-modulated ON/OFF state machine
  whose ON epochs multiply latencies, producing correlated non-i.i.d. runs.

Plans are frozen, validated, and picklable, so a scenario can carry one in
its ``cluster_kwargs`` and sharded workers can rebuild identical per-cluster
runtimes from it (see :mod:`repro.faults.runtime`).  The determinism
contract: a plan only *modulates* values already drawn from the network's
batched buffers — it never consumes draws of its own — so a modulated run
consumes exactly as many generator draws as an unmodulated one and the
serial ≡ sharded bit-for-bit guarantee survives.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import ConfigurationError

__all__ = ["WARS_LEGS", "GrayFailure", "BurstProcess", "FaultPlan"]

#: The four one-way message legs a fault can target: coordinator→replica
#: write (``W``), replica→coordinator ack (``A``), coordinator→replica read
#: request (``R``), replica→coordinator read response (``S``).
WARS_LEGS: tuple[str, ...] = ("W", "A", "R", "S")


def _validate_legs(legs: tuple[str, ...], owner: str) -> None:
    if not legs:
        raise ConfigurationError(f"{owner} must target at least one WARS leg")
    unknown = [leg for leg in legs if leg not in WARS_LEGS]
    if unknown:
        raise ConfigurationError(
            f"{owner} legs must be drawn from {WARS_LEGS}, got {unknown}"
        )
    if len(set(legs)) != len(legs):
        raise ConfigurationError(f"{owner} legs must be unique, got {legs}")


@dataclass(frozen=True)
class GrayFailure:
    """A slow-but-alive condition: latency inflation on a schedule.

    While active, every targeted draw is multiplied by ``multiplier``; draws
    that exceed ``tail_threshold_ms`` (pre-multiplication) are additionally
    multiplied by ``tail_multiplier``, modelling the long-tail inflation gray
    failures show in practice (degraded disks, GC pauses) without changing
    the body of the distribution.

    The schedule is expressed in absolute simulated milliseconds.  With
    ``period_ms`` set, the window ``[start_ms, start_ms + duration_ms)``
    repeats every period — since the divergence harness runs every block from
    ``t = 0``, a periodic schedule makes each block (and therefore serial and
    sharded runs alike) experience the same pattern.
    """

    #: Node ids whose legs are affected; empty = every node.
    nodes: tuple[str, ...] = ()
    #: Multiplier applied to every targeted draw while active.
    multiplier: float = 1.0
    #: Window start (absolute simulated ms).
    start_ms: float = 0.0
    #: Window length; ``None`` = active forever once started.
    duration_ms: float | None = None
    #: Repeat the window every ``period_ms``; ``None`` = one-shot.
    period_ms: float | None = None
    #: WARS legs affected.
    legs: tuple[str, ...] = WARS_LEGS
    #: Draws above this (pre-multiplication) get the extra tail multiplier.
    tail_threshold_ms: float | None = None
    #: Extra multiplier for above-threshold draws.
    tail_multiplier: float = 1.0

    def __post_init__(self) -> None:
        _validate_legs(tuple(self.legs), "GrayFailure")
        if self.multiplier <= 0.0 or not math.isfinite(self.multiplier):
            raise ConfigurationError(
                f"gray-failure multiplier must be positive and finite, got {self.multiplier}"
            )
        if self.start_ms < 0.0:
            raise ConfigurationError(
                f"gray-failure start must be non-negative, got {self.start_ms}"
            )
        if self.duration_ms is not None and self.duration_ms <= 0.0:
            raise ConfigurationError(
                f"gray-failure duration must be positive, got {self.duration_ms}"
            )
        if self.period_ms is not None:
            if self.duration_ms is None:
                raise ConfigurationError(
                    "a periodic gray failure needs a finite duration_ms"
                )
            if self.period_ms < self.duration_ms:
                raise ConfigurationError(
                    f"gray-failure period {self.period_ms} must be >= duration "
                    f"{self.duration_ms}"
                )
        if self.tail_multiplier <= 0.0 or not math.isfinite(self.tail_multiplier):
            raise ConfigurationError(
                f"tail multiplier must be positive and finite, got {self.tail_multiplier}"
            )
        if self.tail_threshold_ms is not None and self.tail_threshold_ms < 0.0:
            raise ConfigurationError(
                f"tail threshold must be non-negative, got {self.tail_threshold_ms}"
            )

    def active_at(self, now_ms: float) -> bool:
        """Whether the schedule is in an active window at ``now_ms``."""
        if now_ms < self.start_ms:
            return False
        if self.period_ms is not None:
            phase = (now_ms - self.start_ms) % self.period_ms
            return phase < self.duration_ms  # type: ignore[operator]
        if self.duration_ms is None:
            return True
        return now_ms < self.start_ms + self.duration_ms


@dataclass(frozen=True)
class BurstProcess:
    """A seeded Markov-modulated ON/OFF latency burst process.

    The process alternates OFF and ON epochs with exponentially distributed
    durations (means ``mean_off_ms`` / ``mean_on_ms``), drawn from a private
    generator seeded by ``seed`` — the epochs never touch the cluster's
    shared generator, so adding a burst process leaves every other random
    stream bit-for-bit unchanged.  While ON, targeted draws are multiplied by
    ``on_multiplier``; consecutive messages therefore see *correlated* slow
    periods rather than i.i.d. noise.
    """

    #: Seed for the private epoch generator (deterministic per plan).
    seed: int = 0
    #: Latency multiplier during ON epochs.
    on_multiplier: float = 4.0
    #: Mean ON-epoch length (ms).
    mean_on_ms: float = 1_000.0
    #: Mean OFF-epoch length (ms).
    mean_off_ms: float = 4_000.0
    #: WARS legs affected.
    legs: tuple[str, ...] = WARS_LEGS
    #: Node ids affected; empty = every node.
    nodes: tuple[str, ...] = ()
    #: Start in the ON state instead of OFF.
    start_on: bool = False

    def __post_init__(self) -> None:
        _validate_legs(tuple(self.legs), "BurstProcess")
        if self.on_multiplier <= 0.0 or not math.isfinite(self.on_multiplier):
            raise ConfigurationError(
                f"burst multiplier must be positive and finite, got {self.on_multiplier}"
            )
        for label, value in (("mean_on_ms", self.mean_on_ms), ("mean_off_ms", self.mean_off_ms)):
            if value <= 0.0 or not math.isfinite(value):
                raise ConfigurationError(
                    f"burst {label} must be positive and finite, got {value}"
                )


@dataclass(frozen=True)
class FaultPlan:
    """A named bundle of gray failures and burst processes.

    The plan is pure data: per-cluster mutable state (burst epoch machines)
    lives in :class:`~repro.faults.runtime.FaultRuntime`, built fresh by each
    :class:`~repro.cluster.network.Network` so blocks and worker processes
    never share modulation state.
    """

    name: str = "fault-plan"
    gray_failures: tuple[GrayFailure, ...] = ()
    bursts: tuple[BurstProcess, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("fault plans need a non-empty name")
        if not self.gray_failures and not self.bursts:
            raise ConfigurationError(
                f"fault plan {self.name!r} is empty: add at least one "
                "GrayFailure or BurstProcess"
            )
        for item in self.gray_failures:
            if not isinstance(item, GrayFailure):
                raise ConfigurationError(
                    f"gray_failures must contain GrayFailure instances, got {item!r}"
                )
        for item in self.bursts:
            if not isinstance(item, BurstProcess):
                raise ConfigurationError(
                    f"bursts must contain BurstProcess instances, got {item!r}"
                )

    def describe(self) -> str:
        """One-line human summary (used by CLI/scenario descriptions)."""
        parts = [
            f"{len(self.gray_failures)} gray failure(s)",
            f"{len(self.bursts)} burst process(es)",
        ]
        return f"{self.name}: " + ", ".join(parts)
