"""Adaptive-recovery closed loop: hostile trace → online refits → convergence.

The scenario matrix (:mod:`repro.scenarios.divergence`) quantifies how far a
*static* predictor drifts when its latency assumptions are violated.  This
module closes the loop: it replays a hostile scenario run as a timeline of
per-leg W/A/R/S observations, streams them into a
:class:`~repro.serving.service.PredictorService` tenant in timed windows,
refits after each window, and measures how quickly the adaptive model's
consistency curve converges back onto the measured one.

The headline metric is ``recovered_fraction``: ``1 − adaptive/static`` mean
per-probe ``|Δp|`` against the measured consistency curve.  ``0`` means the
refits bought nothing; ``1`` means the adaptive model matches the measured
curve exactly.  ``windows_to_threshold`` reports how many ingest→refit
windows it took to cross a target fraction (the closed loop's "time to
recover").

Determinism
-----------
The measured side reuses :func:`run_scenario`'s exact seed discipline — the
root seed's first two children are the predictor seed and the blocks root, in
that order — so the simulated run here is bit-for-bit the one
``run_scenario(name, writes=…, rng=…)`` measures.  Blocks run serially
(trace logs must be kept, and harvesting is cheap next to simulation).  The
R/S split draws come from a third child of the root, consumed in trace
order, making the harvested sample stream reproducible end to end.

Harvesting
----------
``W`` (coordinator → replica write delay) and ``A`` (replica → coordinator
ack delay) are read directly off the trace log.  The trace records a read's
*response arrival* only — the round trip ``R + S`` — so the combined sample
``T`` is split by a seeded uniform draw: ``R = U·T``, ``S = T − U·T``.  For
i.i.d. exponential legs this is exact (given ``R + S = T``, ``R`` is uniform
on ``[0, T]``); for other distributions it is an approximation, which is
itself realistic: a production measurement layer rarely sees one-way read
legs either.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.analysis.staleness import consistency_by_time, observe_staleness
from repro.analysis.validation import _block_sizes, _root_entropy
from repro.analytic.predictor import AnalyticPredictor
from repro.cluster.client import WorkloadRunner
from repro.cluster.sampling import DEFAULT_DRAW_BATCH_SIZE
from repro.cluster.store import DynamoCluster
from repro.core.quorum import ReplicaConfig
from repro.exceptions import ScenarioError
from repro.scenarios.divergence import SCENARIO_BLOCK_WRITES
from repro.scenarios.registry import ScenarioContext, get_scenario
from repro.serving.service import PredictorService

__all__ = [
    "LegSample",
    "RecoveryWindow",
    "RecoveryTrajectory",
    "harvest_wars_observations",
    "run_adaptive_recovery",
]

#: Tenant name the closed loop registers on its service.
RECOVERY_TENANT = "adaptive"


@dataclass(frozen=True)
class LegSample:
    """One harvested per-leg latency observation on the global timeline.

    ``at_ms`` is the *global* simulated time the observation became visible
    at the coordinator (message arrival), which is when a real measurement
    layer could have recorded it — windows slice on this, not on operation
    start times.
    """

    leg: str
    at_ms: float
    value_ms: float


def harvest_wars_observations(
    trace_log,
    offset_ms: float = 0.0,
    split_rng: np.random.Generator | None = None,
) -> list[LegSample]:
    """Extract per-leg W/A/R/S samples from one block's trace log.

    Args:
        trace_log: A cluster trace log (columnar or object backend — both
            expose ``writes``/``reads`` row views).
        offset_ms: Added to every local timestamp, mapping this block onto
            the run's global timeline.
        split_rng: Generator for the R/S round-trip split draws (one uniform
            per read response, consumed in trace order).  Defaults to a fresh
            seeded generator, but callers wanting cross-block reproducibility
            should pass their own.
    """
    rng = np.random.default_rng(0) if split_rng is None else split_rng
    samples: list[LegSample] = []
    for write in trace_log.writes:
        start = write.started_ms
        arrivals = write.replica_arrivals_ms
        for replica, arrival in arrivals.items():
            samples.append(LegSample("W", offset_ms + arrival, arrival - start))
        for replica, ack in write.ack_arrivals_ms.items():
            arrival = arrivals.get(replica)
            if arrival is None:  # ack without a recorded arrival: lost trace
                continue
            samples.append(LegSample("A", offset_ms + ack, ack - arrival))
    for read in trace_log.reads:
        start = read.started_ms
        for replica, response in read.response_arrivals_ms.items():
            round_trip = response - start
            r_leg = float(rng.random()) * round_trip
            samples.append(LegSample("R", offset_ms + response, r_leg))
            samples.append(LegSample("S", offset_ms + response, round_trip - r_leg))
    return samples


@dataclass(frozen=True)
class RecoveryWindow:
    """One ingest→refit→re-measure step of the closed loop."""

    index: int
    start_ms: float
    end_ms: float
    samples: Mapping[str, int]
    fingerprint: str
    mean_abs_delta_p: float
    recovered_fraction: float

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "start_ms": self.start_ms,
            "end_ms": self.end_ms,
            "samples": dict(self.samples),
            "fingerprint": self.fingerprint,
            "mean_abs_delta_p": self.mean_abs_delta_p,
            "recovered_fraction": self.recovered_fraction,
        }


@dataclass(frozen=True)
class RecoveryTrajectory:
    """Divergence-vs-window curve for one adaptive-recovery run."""

    scenario: str
    config: ReplicaConfig
    writes: int
    observations: int
    harvested_samples: int
    static_mean_abs_delta_p: float
    recovery_threshold: float
    windows: tuple[RecoveryWindow, ...]
    windows_to_threshold: int | None

    @property
    def final_mean_abs_delta_p(self) -> float:
        return self.windows[-1].mean_abs_delta_p

    @property
    def final_recovered_fraction(self) -> float:
        return self.windows[-1].recovered_fraction

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "config": {"n": self.config.n, "r": self.config.r, "w": self.config.w},
            "writes": self.writes,
            "observations": self.observations,
            "harvested_samples": self.harvested_samples,
            "static_mean_abs_delta_p": self.static_mean_abs_delta_p,
            "recovery_threshold": self.recovery_threshold,
            "windows": [window.to_dict() for window in self.windows],
            "windows_to_threshold": self.windows_to_threshold,
            "final_mean_abs_delta_p": self.final_mean_abs_delta_p,
            "final_recovered_fraction": self.final_recovered_fraction,
        }

    def summary_lines(self) -> list[str]:
        reached = (
            "never reached"
            if self.windows_to_threshold is None
            else f"window {self.windows_to_threshold}/{len(self.windows)}"
        )
        lines = [
            f"scenario: {self.scenario} ({self.config.label()})",
            f"harvested samples: {self.harvested_samples} "
            f"from {self.observations} staleness observations",
            f"static model mean |delta p|: {self.static_mean_abs_delta_p * 100:.2f}%",
            f"threshold ({self.recovery_threshold:.0%} recovered): {reached}",
        ]
        for window in self.windows:
            lines.append(
                f"  window {window.index}: mean |delta p| "
                f"{window.mean_abs_delta_p * 100:.2f}% "
                f"({window.recovered_fraction:+.0%} recovered)"
            )
        return lines


def run_adaptive_recovery(
    name: str = "gray-failure",
    writes: int = 2_000,
    config: ReplicaConfig | None = None,
    windows: int = 8,
    recovery_threshold: float = 0.5,
    bin_width_ms: float = 5.0,
    block_writes: int | None = None,
    draw_batch_size: int = DEFAULT_DRAW_BATCH_SIZE,
    refit_method: str = "empirical",
    reservoir_capacity: int = 8_192,
    rng: np.random.Generator | int | None = 0,
    service: PredictorService | None = None,
) -> RecoveryTrajectory:
    """Run the closed loop on one scenario and report its recovery curve.

    The hostile run is simulated block-by-block (the measured side is
    bit-for-bit :func:`~repro.scenarios.divergence.run_scenario`'s for the
    same ``rng``), its trace is harvested into a globally-timestamped
    observation stream, and the stream is replayed through a serving tenant
    in ``windows`` equal time slices: ingest the slice, refit, and score the
    refitted analytic curve against the measured consistency curve.

    Args:
        name: Registered scenario to run (any scenario works; fault-plan
            scenarios are the motivating case).
        windows: Number of equal-width ingest→refit windows.
        recovery_threshold: Recovered fraction that counts as "recovered"
            for ``windows_to_threshold``.
        service: Optional pre-configured service (must not already have a
            tenant named ``"adaptive"``); by default a fresh one is built
            with ``refit_method``/``reservoir_capacity`` and auto-refit off
            (the loop refits explicitly at window boundaries).
    """
    scenario = get_scenario(name)
    if config is None:
        config = ReplicaConfig(n=3, r=1, w=1)
    if writes < 10:
        raise ScenarioError(f"at least 10 writes are required, got {writes}")
    if windows < 1:
        raise ScenarioError(f"at least one window is required, got {windows}")
    if not 0.0 < recovery_threshold < 1.0:
        raise ScenarioError(
            f"recovery threshold must be in (0, 1), got {recovery_threshold}"
        )

    root = np.random.SeedSequence(_root_entropy(rng))
    # First two children in run_scenario's order (predictor, blocks) keep the
    # measured side bit-for-bit identical to the divergence harness; the
    # extra children seed the R/S splits and the serving stack.
    _predictor_seed, blocks_root = root.spawn(2)
    split_seed, service_seed = root.spawn(2)
    split_rng = np.random.default_rng(split_seed)

    # --- Measured side: serial blocks, trace logs harvested per block. ---
    sizes = _block_sizes(writes, block_writes or SCENARIO_BLOCK_WRITES)
    seeds = blocks_root.spawn(len(sizes))
    observations = []
    samples: list[LegSample] = []
    offset_ms = 0.0
    for size, seed in zip(sizes, seeds):
        cluster_seed, context_seed = seed.spawn(2)
        cluster = DynamoCluster(
            config=config,
            distributions=scenario.distributions_for_cluster(),
            rng=np.random.default_rng(cluster_seed),
            draw_batch_size=draw_batch_size,
            **scenario.cluster_kwargs,
        )
        context = ScenarioContext(
            writes=size,
            write_interval_ms=scenario.write_interval_ms,
            read_offsets_ms=scenario.read_offsets_ms,
            horizon_ms=size * scenario.write_interval_ms,
            rng=np.random.default_rng(context_seed),
        )
        operations = scenario.build_operations(context)
        if scenario.setup is not None:
            scenario.setup(cluster, context)
        WorkloadRunner(cluster).run(operations)
        observations.extend(observe_staleness(cluster.trace_log))
        samples.extend(
            harvest_wars_observations(cluster.trace_log, offset_ms, split_rng)
        )
        offset_ms += context.horizon_ms
    if not observations:
        raise ScenarioError(f"scenario {name!r} produced no staleness observations")
    if not samples:
        raise ScenarioError(f"scenario {name!r} produced no harvestable leg samples")

    # --- Measured consistency curve at populated bins (run_scenario's). ---
    max_t = max(obs.t_since_commit_ms for obs in observations)
    bin_edges = np.arange(0.0, max_t + bin_width_ms, bin_width_ms)
    if bin_edges.size < 2:
        bin_edges = np.array([0.0, max(max_t, bin_width_ms)])
    binned = consistency_by_time(observations, bin_edges)
    probe_ts: list[float] = []
    measured_curve: list[float] = []
    for center, fraction, count in zip(binned.bin_centers, binned.fractions, binned.counts):
        if count == 0 or not np.isfinite(fraction):
            continue
        probe_ts.append(max(center, 0.0))
        measured_curve.append(float(fraction))
    if not probe_ts:
        raise ScenarioError("no populated time bins; widen the bins or add reads")
    measured = np.asarray(measured_curve)

    # --- Static baseline: the unmutated analytic model's divergence. ---
    base = scenario.base_distributions()
    static_result = AnalyticPredictor(distributions=base).result(config)
    static_curve = np.asarray(
        [static_result.consistency_probability(t) for t in probe_ts]
    )
    static_mean = float(np.mean(np.abs(static_curve - measured)))
    if static_mean <= 0.0:
        raise ScenarioError(
            f"scenario {name!r} has zero static divergence; nothing to recover"
        )

    # --- Serving side: ingest windows, refit, re-score. ---
    if service is None:
        service = PredictorService(
            refit_every=None,
            refit_method=refit_method,
            reservoir_capacity=reservoir_capacity,
            seed=int(service_seed.generate_state(1)[0]),
        )
    if RECOVERY_TENANT in service.tenants():
        raise ScenarioError(
            f"service already has a tenant named {RECOVERY_TENANT!r}"
        )
    service.register_tenant(RECOVERY_TENANT, base)

    samples.sort(key=lambda sample: sample.at_ms)
    total_ms = max(offset_ms, samples[-1].at_ms)
    window_ms = total_ms / windows
    recovery_windows: list[RecoveryWindow] = []
    threshold_window: int | None = None
    cursor = 0
    for index in range(1, windows + 1):
        start_ms = (index - 1) * window_ms
        end_ms = index * window_ms
        window_values: dict[str, list[float]] = {}
        # The final window's right edge is inclusive: the workload drain can
        # place the last arrivals exactly at (or past) the nominal horizon.
        while cursor < len(samples) and (
            samples[cursor].at_ms < end_ms or index == windows
        ):
            sample = samples[cursor]
            window_values.setdefault(sample.leg, []).append(sample.value_ms)
            cursor += 1
        for leg, values in sorted(window_values.items()):
            service.ingest(RECOVERY_TENANT, leg, values)
        fingerprint = service.refit(RECOVERY_TENANT)
        adaptive_curve = np.asarray(
            service.consistency_probabilities(RECOVERY_TENANT, config, probe_ts)
        )
        adaptive_mean = float(np.mean(np.abs(adaptive_curve - measured)))
        recovered = 1.0 - adaptive_mean / static_mean
        if threshold_window is None and recovered >= recovery_threshold:
            threshold_window = index
        recovery_windows.append(
            RecoveryWindow(
                index=index,
                start_ms=start_ms,
                end_ms=end_ms,
                samples={leg: len(values) for leg, values in sorted(window_values.items())},
                fingerprint=fingerprint,
                mean_abs_delta_p=adaptive_mean,
                recovered_fraction=recovered,
            )
        )

    return RecoveryTrajectory(
        scenario=scenario.name,
        config=config,
        writes=writes,
        observations=len(observations),
        harvested_samples=len(samples),
        static_mean_abs_delta_p=static_mean,
        recovery_threshold=float(recovery_threshold),
        windows=tuple(recovery_windows),
        windows_to_threshold=threshold_window,
    )
