"""Online PBS prediction service: ingest → refit → serve → audit.

This package operationalises the paper's workflow as a long-running,
multi-tenant service: per-tenant latency observations stream into bounded
reservoirs (:mod:`repro.serving.reservoir`), are periodically refit into
latency models, and staleness/SLA questions are answered analytically with
results memoised under environment fingerprints
(:mod:`repro.serving.fingerprint`, :mod:`repro.serving.cache`).  The Monte
Carlo engine runs asynchronously as an auditor of served answers
(:mod:`repro.serving.service`), and :mod:`repro.serving.http` exposes the
whole thing over stdlib JSON/HTTP (``pbs-repro serve``).
"""

from repro.serving.cache import CacheStats, LRUCache
from repro.serving.fingerprint import (
    distribution_token,
    environment_fingerprint,
    request_key,
)
from repro.serving.http import make_server, serve_forever
from repro.serving.reservoir import StreamingReservoir
from repro.serving.service import (
    DEFAULT_PERCENTILES,
    DEFAULT_TARGETS,
    PredictorService,
    ServedPrediction,
    ServedRecommendation,
    ServiceStats,
    SpotCheckResult,
    TenantStats,
)

__all__ = [
    "CacheStats",
    "LRUCache",
    "StreamingReservoir",
    "distribution_token",
    "environment_fingerprint",
    "request_key",
    "make_server",
    "serve_forever",
    "PredictorService",
    "ServedPrediction",
    "ServedRecommendation",
    "ServiceStats",
    "SpotCheckResult",
    "TenantStats",
    "DEFAULT_PERCENTILES",
    "DEFAULT_TARGETS",
]
