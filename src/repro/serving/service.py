"""Online PBS prediction service (paper §6 operated as a control loop).

The paper frames PBS as something an operator *runs*, not a one-off analysis:
measure latencies in production, refit the WARS model, and re-answer "how
eventual? how consistent? which (N, R, W)?" as the environment drifts.
:class:`PredictorService` packages that loop for many tenants at once:

* **Ingest** — per-tenant, per-leg latency observations stream into bounded
  :class:`~repro.serving.reservoir.StreamingReservoir` samples, so memory is
  fixed no matter how long the service runs.
* **Refit** — on demand (or every ``refit_every`` observations) the reservoirs
  are turned back into latency distributions, either directly
  (:class:`~repro.latency.empirical.EmpiricalDistribution`) or through the
  paper's §5.5 mixture fit (:func:`~repro.latency.fitting.fit_from_observations`).
* **Serve** — predictions and SLA recommendations are answered analytically
  (PR 6's :class:`~repro.analytic.AnalyticPredictor`, microseconds when warm)
  and memoised in an LRU cache keyed by an *environment fingerprint*: a hash
  of the distribution parameters, so a refit implicitly invalidates every
  stale answer without an invalidation pass.
* **Spot-check** — the Monte Carlo engine is demoted to an asynchronous
  auditor: served answers enqueue a sampling cross-check which a background
  worker (or an explicit :meth:`run_pending_spot_checks` call) drains off the
  request path, mirroring the hybrid-mode contract of
  :meth:`repro.core.predictor.PBSPredictor.report`.
"""

from __future__ import annotations

import dataclasses
import threading
from collections import deque
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.analytic.predictor import AnalyticPredictor
from repro.core.quorum import ReplicaConfig
from repro.core.sla import ConfigurationEvaluation, SLAOptimizer, SLATarget
from repro.exceptions import ConfigurationError, PBSError
from repro.latency.composite import PerReplicaLatency
from repro.latency.empirical import EmpiricalDistribution
from repro.latency.fitting import DEFAULT_FIT_PERCENTILES, fit_from_observations
from repro.latency.production import WARSDistributions, production_fit
from repro.serving.cache import CacheStats, LRUCache
from repro.serving.fingerprint import environment_fingerprint, request_key
from repro.serving.reservoir import StreamingReservoir

__all__ = [
    "PredictorService",
    "ServedPrediction",
    "ServedRecommendation",
    "SpotCheckResult",
    "TenantStats",
    "ServiceStats",
    "DEFAULT_TARGETS",
    "DEFAULT_PERCENTILES",
]

#: Consistency targets answered by :meth:`PredictorService.predict` by default.
DEFAULT_TARGETS: tuple[float, ...] = (0.99, 0.999)

#: Latency percentiles answered by :meth:`PredictorService.predict` by default.
DEFAULT_PERCENTILES: tuple[float, ...] = (50.0, 95.0, 99.0, 99.9)

_WARS_LETTERS = ("W", "A", "R", "S")


def _reject_per_replica(distributions: WARSDistributions) -> None:
    for letter, leg in distributions.components().items():
        if isinstance(leg, PerReplicaLatency):
            raise ConfigurationError(
                f"the serving layer answers analytically and requires i.i.d. "
                f"replicas, but the {letter} leg of "
                f"{distributions.name!r} is per-replica (the WAN scenario); "
                f"use the offline Monte Carlo tooling for per-replica models"
            )


@dataclass(frozen=True)
class ServedPrediction:
    """One served staleness/latency answer for a (tenant, configuration) pair."""

    tenant: str
    config: ReplicaConfig
    #: Environment fingerprint the answer was computed under.
    fingerprint: str
    #: ``P(consistent read immediately after commit)``.
    consistency_at_commit: float
    #: Target probability -> t-visibility (ms).
    t_visibility_ms: Mapping[float, float]
    #: Percentile -> read latency (ms).
    read_latency_ms: Mapping[float, float]
    #: Percentile -> write latency (ms).
    write_latency_ms: Mapping[float, float]
    #: ``True`` when the tenant's most recent refit failed and the answer is
    #: served stale-while-revalidate from the last-good environment.
    degraded: bool = False

    def to_dict(self) -> dict:
        """JSON-ready representation (string keys, plain floats)."""
        return {
            "tenant": self.tenant,
            "config": {"n": self.config.n, "r": self.config.r, "w": self.config.w},
            "fingerprint": self.fingerprint,
            "consistency_at_commit": self.consistency_at_commit,
            "t_visibility_ms": {str(k): v for k, v in self.t_visibility_ms.items()},
            "read_latency_ms": {str(k): v for k, v in self.read_latency_ms.items()},
            "write_latency_ms": {str(k): v for k, v in self.write_latency_ms.items()},
            "degraded": self.degraded,
        }


@dataclass(frozen=True)
class ServedRecommendation:
    """One served SLA optimisation: the winner plus the full ranking."""

    tenant: str
    fingerprint: str
    target: SLATarget
    #: The winning evaluation, or ``None`` when no configuration meets the SLA.
    best: ConfigurationEvaluation | None
    #: Every candidate evaluation, sorted by combined tail latency.
    evaluations: tuple[ConfigurationEvaluation, ...]

    def to_dict(self) -> dict:
        """JSON-ready representation."""

        def evaluation_dict(evaluation: ConfigurationEvaluation) -> dict:
            return {
                "config": evaluation.config.label(),
                "read_latency_ms": evaluation.read_latency_ms,
                "write_latency_ms": evaluation.write_latency_ms,
                "t_visibility_ms": evaluation.t_visibility_ms,
                "consistency_at_commit": evaluation.consistency_at_commit,
                "meets_target": evaluation.meets_target,
                "violations": list(evaluation.violations),
            }

        return {
            "tenant": self.tenant,
            "fingerprint": self.fingerprint,
            "best": evaluation_dict(self.best) if self.best is not None else None,
            "evaluations": [evaluation_dict(e) for e in self.evaluations],
        }


@dataclass(frozen=True)
class SpotCheckResult:
    """Outcome of one asynchronous Monte Carlo audit of a served answer."""

    tenant: str
    config: ReplicaConfig
    fingerprint: str
    trials: int
    #: Largest |analytic − sampled| consistency disagreement over the probes.
    max_absolute_error: float
    #: Whether the disagreement stayed within the service tolerance.
    passed: bool


@dataclass(frozen=True)
class TenantStats:
    """Ingest/refit counters for one tenant."""

    name: str
    fingerprint: str
    refits: int
    #: WARS letter -> observations ever ingested for that leg.
    observed: Mapping[str, int]
    #: WARS letter -> observations currently retained in the reservoir.
    retained: Mapping[str, int]
    #: Serving stale-while-revalidate from the last-good environment.
    degraded: bool = False
    #: Refit rounds that failed (the tenant kept its last-good model).
    refit_failures: int = 0
    #: Consecutive failures; at the service's threshold the circuit opens
    #: and auto-refits are suspended until a manual refit succeeds.
    consecutive_refit_failures: int = 0
    #: Message of the most recent refit failure (``None`` when healthy).
    last_refit_error: str | None = None


@dataclass(frozen=True)
class ServiceStats:
    """A point-in-time snapshot of service health."""

    tenants: tuple[TenantStats, ...]
    cache: CacheStats
    predictions_served: int
    recommendations_served: int
    spot_checks_pending: int
    spot_checks_run: int
    spot_checks_failed: int
    #: Largest disagreement seen across all completed spot-checks.
    max_spot_check_error: float
    #: Failed refit rounds across all tenants (each left last-good serving).
    refit_failures: int = 0
    #: Tenants currently serving degraded (stale-while-revalidate) answers.
    degraded_tenants: int = 0
    #: Exceptions survived by the spot-check worker thread.
    spot_check_worker_errors: int = 0
    #: The worker's current restart backoff (seconds); its poll interval
    #: when healthy, doubled per consecutive error up to the service bound.
    spot_check_worker_backoff_seconds: float = 0.0

    def to_dict(self) -> dict:
        """JSON-ready representation."""
        return {
            "tenants": [
                {
                    "name": t.name,
                    "fingerprint": t.fingerprint,
                    "refits": t.refits,
                    "observed": dict(t.observed),
                    "retained": dict(t.retained),
                    "degraded": t.degraded,
                    "refit_failures": t.refit_failures,
                    "consecutive_refit_failures": t.consecutive_refit_failures,
                    "last_refit_error": t.last_refit_error,
                }
                for t in self.tenants
            ],
            "cache": {
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "evictions": self.cache.evictions,
                "size": self.cache.size,
                "capacity": self.cache.capacity,
                "hit_rate": self.cache.hit_rate,
            },
            "predictions_served": self.predictions_served,
            "recommendations_served": self.recommendations_served,
            "refit_failures": self.refit_failures,
            "degraded_tenants": self.degraded_tenants,
            "spot_checks": {
                "pending": self.spot_checks_pending,
                "run": self.spot_checks_run,
                "failed": self.spot_checks_failed,
                "max_absolute_error": self.max_spot_check_error,
                "worker_errors": self.spot_check_worker_errors,
                "worker_backoff_seconds": self.spot_check_worker_backoff_seconds,
            },
        }


@dataclass
class _SpotCheckItem:
    """A queued audit: re-derive the analytic probabilities by sampling."""

    tenant: str
    config: ReplicaConfig
    fingerprint: str
    distributions: WARSDistributions
    #: ``(t_ms, analytic P(consistent at t))`` pairs to cross-check.
    probes: tuple[tuple[float, float], ...]


class _TenantState:
    """Mutable per-tenant state (guarded by the service lock)."""

    __slots__ = (
        "name",
        "distributions",
        "predictor",
        "fingerprint",
        "reservoirs",
        "refits",
        "ingested_since_refit",
        "seed",
        "refit_failures",
        "consecutive_refit_failures",
        "last_refit_error",
        "degraded",
    )

    def __init__(
        self,
        name: str,
        distributions: WARSDistributions,
        predictor: AnalyticPredictor,
        fingerprint: str,
        seed: int,
    ) -> None:
        self.name = name
        self.distributions = distributions
        self.predictor = predictor
        self.fingerprint = fingerprint
        self.reservoirs: dict[str, StreamingReservoir] = {}
        self.refits = 0
        self.ingested_since_refit = 0
        self.seed = seed
        self.refit_failures = 0
        self.consecutive_refit_failures = 0
        self.last_refit_error: str | None = None
        self.degraded = False


class PredictorService:
    """Multi-tenant online PBS predictor (analytic-first, sampling-audited).

    Parameters
    ----------
    replication_factors:
        Candidate N values for SLA recommendations (and part of every
        tenant's environment fingerprint).
    cache_capacity:
        Entries in the shared LRU result cache.
    reservoir_capacity:
        Per-leg reservoir size for each tenant's observation stream.
    refit_every:
        Automatically refit a tenant after this many ingested observations
        (``None`` disables auto-refit; :meth:`refit` always works).
    refit_method:
        ``"empirical"`` turns each reservoir directly into an
        :class:`EmpiricalDistribution`; ``"mixture"`` runs the paper's §5.5
        Pareto+exponential fit over the reservoir (slower, smooth tails).
    refit_retries:
        Extra immediate attempts when a refit throws before the round is
        recorded as a failure (bounded retry; refits are deterministic, so
        this mostly covers transient resource errors).
    refit_failure_threshold:
        Consecutive failed refit rounds after which the circuit opens:
        auto-refits are suspended and the tenant keeps serving from its
        last-good environment (answers flagged ``degraded``) until a manual
        :meth:`refit` — the half-open probe — succeeds.
    spot_check_trials:
        Monte Carlo trials per asynchronous audit.
    spot_check_tolerance:
        Largest |analytic − sampled| consistency disagreement an audit may
        report and still pass.
    spot_check_queue:
        Bound on queued audits; the oldest pending audit is dropped first
        (the request path never blocks on the auditor).
    spot_check_worker_backoff_max_seconds:
        Upper bound on the spot-check worker's restart backoff: the worker
        survives exceptions in :meth:`run_pending_spot_checks`, doubling its
        poll interval per consecutive error up to this bound.
    seed:
        Base seed for reservoirs and spot-check sampling.
    """

    def __init__(
        self,
        replication_factors: Sequence[int] = (1, 2, 3, 4, 5),
        cache_capacity: int = 1024,
        reservoir_capacity: int = 4096,
        refit_every: int | None = None,
        refit_method: str = "empirical",
        refit_percentiles: Sequence[float] = DEFAULT_FIT_PERCENTILES,
        refit_retries: int = 1,
        refit_failure_threshold: int = 3,
        spot_check_trials: int = 20_000,
        spot_check_tolerance: float = 0.02,
        spot_check_queue: int = 256,
        spot_check_worker_backoff_max_seconds: float = 5.0,
        seed: int = 0,
    ) -> None:
        if not replication_factors:
            raise ConfigurationError("at least one replication factor is required")
        if refit_method not in ("empirical", "mixture"):
            raise ConfigurationError(
                f"refit method must be 'empirical' or 'mixture', got {refit_method!r}"
            )
        if refit_every is not None and refit_every < 1:
            raise ConfigurationError(
                f"refit_every must be >= 1 observations, got {refit_every}"
            )
        if spot_check_trials < 100:
            raise ConfigurationError(
                f"spot checks need at least 100 trials, got {spot_check_trials}"
            )
        if not 0.0 < spot_check_tolerance <= 1.0:
            raise ConfigurationError(
                f"spot-check tolerance must be in (0, 1], got {spot_check_tolerance}"
            )
        if spot_check_queue < 1:
            raise ConfigurationError(
                f"spot-check queue bound must be >= 1, got {spot_check_queue}"
            )
        if refit_retries < 0:
            raise ConfigurationError(
                f"refit_retries must be >= 0, got {refit_retries}"
            )
        if refit_failure_threshold < 1:
            raise ConfigurationError(
                f"refit_failure_threshold must be >= 1, got {refit_failure_threshold}"
            )
        if spot_check_worker_backoff_max_seconds <= 0.0:
            raise ConfigurationError(
                "spot_check_worker_backoff_max_seconds must be positive, got "
                f"{spot_check_worker_backoff_max_seconds}"
            )
        self._replication_factors = tuple(sorted(set(int(n) for n in replication_factors)))
        self._reservoir_capacity = int(reservoir_capacity)
        self._refit_every = refit_every
        self._refit_method = refit_method
        self._refit_percentiles = tuple(refit_percentiles)
        self._refit_retries = int(refit_retries)
        self._refit_failure_threshold = int(refit_failure_threshold)
        self._spot_check_trials = int(spot_check_trials)
        self._spot_check_tolerance = float(spot_check_tolerance)
        self._seed = int(seed)
        self._lock = threading.RLock()
        self._tenants: dict[str, _TenantState] = {}
        self._cache: LRUCache[object] = LRUCache(cache_capacity)
        self._spot_queue: deque[_SpotCheckItem] = deque(maxlen=int(spot_check_queue))
        self._spot_results: deque[SpotCheckResult] = deque(maxlen=int(spot_check_queue))
        self._spot_rng = np.random.default_rng(self._seed)
        self._spot_runs = 0
        self._spot_failures = 0
        self._max_spot_error = 0.0
        self._predictions_served = 0
        self._recommendations_served = 0
        self._refit_failures = 0
        self._worker: threading.Thread | None = None
        self._worker_stop = threading.Event()
        self._worker_errors = 0
        self._worker_backoff_seconds = 0.0
        self._worker_backoff_max = float(spot_check_worker_backoff_max_seconds)

    # ------------------------------------------------------------------
    # Tenant lifecycle.
    # ------------------------------------------------------------------
    def register_tenant(
        self, name: str, distributions: WARSDistributions | str
    ) -> str:
        """Register (or replace) a tenant and return its environment fingerprint.

        ``distributions`` is either explicit :class:`WARSDistributions` or a
        production-fit name (``"LNKD-SSD"``, ``"LNKD-DISK"``, ``"YMMR"``).
        Per-replica (WAN) models are rejected: the serving layer answers
        analytically, which requires i.i.d. replicas.
        """
        if not name:
            raise ConfigurationError("tenant name must be non-empty")
        if isinstance(distributions, str):
            distributions = production_fit(distributions)
        _reject_per_replica(distributions)
        predictor = AnalyticPredictor(distributions=distributions)
        fingerprint = self._fingerprint(distributions, predictor)
        with self._lock:
            self._tenants[name] = _TenantState(
                name=name,
                distributions=distributions,
                predictor=predictor,
                fingerprint=fingerprint,
                seed=self._seed + len(self._tenants),
            )
        return fingerprint

    def tenants(self) -> tuple[str, ...]:
        """Registered tenant names, sorted."""
        with self._lock:
            return tuple(sorted(self._tenants))

    def fingerprint_of(self, tenant: str) -> str:
        """The tenant's current environment fingerprint."""
        return self._tenant(tenant).fingerprint

    def _tenant(self, name: str) -> _TenantState:
        with self._lock:
            try:
                return self._tenants[name]
            except KeyError:
                raise KeyError(f"unknown tenant {name!r}") from None

    def _fingerprint(
        self, distributions: WARSDistributions, predictor: AnalyticPredictor
    ) -> str:
        return environment_fingerprint(
            distributions,
            self._replication_factors,
            extra=(
                predictor.grid_points,
                predictor.tail_mass,
                predictor.request_cells,
                predictor.quad_cells,
            ),
        )

    # ------------------------------------------------------------------
    # Ingest + refit.
    # ------------------------------------------------------------------
    def ingest(
        self, tenant: str, leg: str, observations: Iterable[float] | np.ndarray
    ) -> int:
        """Ingest latency observations (ms) for one WARS leg of a tenant.

        Returns the number of observations ingested.  When ``refit_every`` is
        configured and the tenant has accumulated that many observations
        since its last refit, a refit runs synchronously before returning.
        An auto-refit that throws is absorbed (bounded retries, then the
        failure is recorded and the tenant keeps serving from its last-good
        environment); subsequent auto-refits back off exponentially in
        observation count and stop entirely once the circuit opens.
        """
        letter = leg.upper()
        if letter not in _WARS_LETTERS:
            raise ConfigurationError(
                f"leg must be one of {', '.join(_WARS_LETTERS)}, got {leg!r}"
            )
        state = self._tenant(tenant)
        with self._lock:
            reservoir = state.reservoirs.get(letter)
            if reservoir is None:
                reservoir = StreamingReservoir(
                    capacity=self._reservoir_capacity,
                    seed=state.seed + _WARS_LETTERS.index(letter),
                )
                state.reservoirs[letter] = reservoir
            count = reservoir.extend(observations)
            state.ingested_since_refit += count
            if (
                self._refit_every is not None
                and state.consecutive_refit_failures < self._refit_failure_threshold
                and state.ingested_since_refit >= self._auto_refit_due(state)
            ):
                self._attempt_refit_locked(state)
        return count

    def _auto_refit_due(self, state: _TenantState) -> int:
        """Observations required before the next auto-refit attempt.

        Healthy tenants refit every ``refit_every`` observations; after a
        failed round the requirement doubles per consecutive failure
        (bounded backoff in observation count — the service has no wall
        clock of its own), so a persistently failing fit is not retried on
        every ingest batch.
        """
        assert self._refit_every is not None
        backoff = 2 ** min(state.consecutive_refit_failures, 6)
        return self._refit_every * backoff

    def refit(self, tenant: str) -> str:
        """Refit the tenant's distributions from its reservoirs.

        Legs with at least one retained observation are replaced by a
        distribution rebuilt from the reservoir (per ``refit_method``); legs
        without observations keep their current model.  Returns the new
        environment fingerprint.  Refitting is deterministic: the same
        reservoir contents always produce the same fingerprint.

        A failing refit raises (:class:`~repro.exceptions.PBSError` at the
        API boundary) but never corrupts the tenant: the last-good
        distributions, predictor, and fingerprint keep serving, flagged
        ``degraded``.  A successful manual refit is the circuit breaker's
        half-open probe — it closes the circuit and re-enables auto-refits.
        """
        state = self._tenant(tenant)
        with self._lock:
            try:
                self._refit_locked(state)
            except Exception as error:
                self._note_refit_failure(state, error)
                if isinstance(error, PBSError):
                    raise
                raise PBSError(
                    f"refit failed for tenant {state.name!r}: {error}"
                ) from error
            return state.fingerprint

    def _attempt_refit_locked(self, state: _TenantState) -> bool:
        """Auto-refit with bounded retries; absorbs failures, returns success."""
        attempts = 1 + self._refit_retries
        error: Exception | None = None
        for _ in range(attempts):
            try:
                self._refit_locked(state)
                return True
            except Exception as exc:  # keep serving last-good on any failure
                error = exc
        assert error is not None
        self._note_refit_failure(state, error)
        return False

    def _note_refit_failure(self, state: _TenantState, error: Exception) -> None:
        state.refit_failures += 1
        state.consecutive_refit_failures += 1
        state.last_refit_error = str(error)
        state.degraded = True
        self._refit_failures += 1

    def _refit_locked(self, state: _TenantState) -> None:
        replacements: dict[str, object] = {}
        for letter, reservoir in state.reservoirs.items():
            if len(reservoir) == 0:
                continue
            values = reservoir.values()
            if self._refit_method == "empirical":
                replacements[letter.lower()] = EmpiricalDistribution.from_samples(values)
            else:
                replacements[letter.lower()] = fit_from_observations(
                    values, percentiles=self._refit_percentiles
                ).distribution
        if replacements:
            # Build everything before touching the tenant: a throw from the
            # fit or the predictor rebind leaves the last-good environment
            # fully intact (graceful degradation, not partial state).
            distributions = dataclasses.replace(state.distributions, **replacements)
            # Carry the discretisation tuning across the drift; the
            # fingerprint change retires every cached answer for the old
            # environment.
            predictor = state.predictor.rebind(distributions)
            fingerprint = self._fingerprint(distributions, predictor)
            state.distributions = distributions
            state.predictor = predictor
            state.fingerprint = fingerprint
        state.ingested_since_refit = 0
        state.refits += 1
        state.consecutive_refit_failures = 0
        state.last_refit_error = None
        state.degraded = False

    # ------------------------------------------------------------------
    # Serving.
    # ------------------------------------------------------------------
    def predict(
        self,
        tenant: str,
        config: ReplicaConfig,
        target_probabilities: Sequence[float] = DEFAULT_TARGETS,
        percentiles: Sequence[float] = DEFAULT_PERCENTILES,
    ) -> ServedPrediction:
        """Serve staleness and latency answers for one configuration.

        Answers come from the tenant's warm analytic predictor and are
        memoised under the environment fingerprint, so repeated queries
        against an unchanged environment are cache hits.  Every cache miss
        enqueues an asynchronous Monte Carlo spot-check.

        When the tenant's most recent refit failed, answers keep coming from
        the last-good environment (stale-while-revalidate) and are flagged
        ``degraded=True`` — the caller decides whether a stale answer is
        acceptable; the service never errors a predict because a refit did.
        """
        state = self._tenant(tenant)
        targets = tuple(float(t) for t in target_probabilities)
        points = tuple(float(p) for p in percentiles)
        with self._lock:
            fingerprint = state.fingerprint
            predictor = state.predictor
            distributions = state.distributions
            degraded = state.degraded
        key = request_key(
            fingerprint, "predict", (config.n, config.r, config.w, targets, points)
        )
        cached = self._cache.get(key)
        if cached is not None:
            with self._lock:
                self._predictions_served += 1
            if cached.degraded != degraded:  # type: ignore[union-attr]
                # Cached answers are keyed by the (last-good) fingerprint;
                # only the freshness flag changes while degraded.
                cached = dataclasses.replace(cached, degraded=degraded)  # type: ignore[arg-type]
            return cached  # type: ignore[return-value]
        result = predictor.result(config)
        prediction = ServedPrediction(
            tenant=tenant,
            config=config,
            fingerprint=fingerprint,
            consistency_at_commit=result.probability_never_stale(),
            t_visibility_ms={t: result.t_visibility(t) for t in targets},
            read_latency_ms={p: result.read_latency_percentile(p) for p in points},
            write_latency_ms={p: result.write_latency_percentile(p) for p in points},
            degraded=degraded,
        )
        self._cache.put(key, prediction)
        probes = tuple(
            (t_ms, result.consistency_probability(t_ms))
            for t_ms in {0.0, *prediction.t_visibility_ms.values()}
        )
        with self._lock:
            self._predictions_served += 1
            self._spot_queue.append(
                _SpotCheckItem(
                    tenant=tenant,
                    config=config,
                    fingerprint=fingerprint,
                    distributions=distributions,
                    probes=probes,
                )
            )
        return prediction

    def consistency_probabilities(
        self, tenant: str, config: ReplicaConfig, times_ms: Sequence[float]
    ) -> tuple[float, ...]:
        """``P(consistent at t)`` at each probe time under the tenant's model.

        A bulk curve probe for monitoring and the adaptive-recovery loop
        (:mod:`repro.faults.recovery`): answered directly from the tenant's
        warm analytic predictor, bypassing the request cache (curves are
        arbitrary probe grids, so memoising them would only churn the LRU).
        """
        state = self._tenant(tenant)
        with self._lock:
            predictor = state.predictor
        result = predictor.result(config)
        return tuple(result.consistency_probability(float(t)) for t in times_ms)

    def recommend(self, tenant: str, target: SLATarget) -> ServedRecommendation:
        """Serve an SLA-driven (N, R, W) recommendation.

        The search runs through :class:`SLAOptimizer` in ``analytic`` mode
        over the service's replication grid, sharing the tenant's warm
        predictor, so a served recommendation for a static environment is
        identical to the offline ``SLAOptimizer(distributions,
        mode="analytic")`` answer.
        """
        state = self._tenant(tenant)
        with self._lock:
            fingerprint = state.fingerprint
            predictor = state.predictor
            distributions = state.distributions
        key = request_key(fingerprint, "recommend", target)
        cached = self._cache.get(key)
        if cached is not None:
            with self._lock:
                self._recommendations_served += 1
            return cached  # type: ignore[return-value]
        optimizer = SLAOptimizer(
            distributions,
            replication_factors=self._replication_factors,
            mode="analytic",
            analytic_predictor=predictor,
        )
        evaluations = tuple(optimizer.evaluate_all(target))
        feasible = [e for e in evaluations if e.meets_target]
        feasible.sort(key=lambda e: (e.combined_latency_ms, -e.config.w))
        best = feasible[0] if feasible else None
        recommendation = ServedRecommendation(
            tenant=tenant,
            fingerprint=fingerprint,
            target=target,
            best=best,
            evaluations=evaluations,
        )
        self._cache.put(key, recommendation)
        with self._lock:
            self._recommendations_served += 1
            if best is not None:
                # Audit the winner: its t-visibility verdict is what the
                # operator acts on.
                result = predictor.result(best.config)
                probe_t = best.t_visibility_ms
                self._spot_queue.append(
                    _SpotCheckItem(
                        tenant=tenant,
                        config=best.config,
                        fingerprint=fingerprint,
                        distributions=distributions,
                        probes=(
                            (0.0, result.consistency_probability(0.0)),
                            (probe_t, result.consistency_probability(probe_t)),
                        ),
                    )
                )
        return recommendation

    # ------------------------------------------------------------------
    # Asynchronous Monte Carlo audits.
    # ------------------------------------------------------------------
    def run_pending_spot_checks(self, max_checks: int | None = None) -> list[SpotCheckResult]:
        """Drain queued audits (up to ``max_checks``) and return their results.

        Each audit replays the served probe times through the Monte Carlo
        sweep engine and compares the sampled consistency probabilities with
        the analytic answers that were served.  Sampling runs outside the
        service lock, so serving continues while audits are in flight.
        """
        from repro.montecarlo.engine import SweepEngine

        results: list[SpotCheckResult] = []
        while max_checks is None or len(results) < max_checks:
            with self._lock:
                if not self._spot_queue:
                    break
                item = self._spot_queue.popleft()
                seed = int(self._spot_rng.integers(0, 2**31 - 1))
            probe_times = tuple(t for t, _ in item.probes)
            engine = SweepEngine(item.distributions, (item.config,), times_ms=probe_times)
            summary = engine.run(self._spot_check_trials, seed).results[0]
            error = max(
                abs(expected - summary.consistency_probability(t))
                for t, expected in item.probes
            )
            outcome = SpotCheckResult(
                tenant=item.tenant,
                config=item.config,
                fingerprint=item.fingerprint,
                trials=self._spot_check_trials,
                max_absolute_error=error,
                passed=error <= self._spot_check_tolerance,
            )
            with self._lock:
                self._spot_runs += 1
                if not outcome.passed:
                    self._spot_failures += 1
                self._max_spot_error = max(self._max_spot_error, error)
                self._spot_results.append(outcome)
            results.append(outcome)
        return results

    def spot_check_results(self) -> tuple[SpotCheckResult, ...]:
        """The most recent completed audits (bounded history)."""
        with self._lock:
            return tuple(self._spot_results)

    def start_spot_check_worker(self, interval_seconds: float = 0.1) -> None:
        """Start a daemon thread draining the audit queue off the request path.

        The worker survives exceptions: an error in
        :meth:`run_pending_spot_checks` is counted
        (``spot_check_worker_errors`` in :meth:`stats`) and the loop resumes
        after a backoff that doubles per consecutive error, bounded by the
        service's ``spot_check_worker_backoff_max_seconds``; a clean drain
        resets the backoff to the poll interval.
        """
        with self._lock:
            if self._worker is not None and self._worker.is_alive():
                return
            self._worker_stop.clear()
            self._worker_backoff_seconds = interval_seconds

            def run() -> None:
                backoff = interval_seconds
                while not self._worker_stop.is_set():
                    try:
                        self.run_pending_spot_checks()
                    except Exception:
                        # The audit thread must outlive any one bad audit:
                        # count the error, back off, try again.
                        backoff = min(backoff * 2.0, self._worker_backoff_max)
                        with self._lock:
                            self._worker_errors += 1
                            self._worker_backoff_seconds = backoff
                    else:
                        backoff = interval_seconds
                        with self._lock:
                            self._worker_backoff_seconds = backoff
                    self._worker_stop.wait(backoff)

            self._worker = threading.Thread(
                target=run, name="pbs-spot-checks", daemon=True
            )
            self._worker.start()

    def stop_spot_check_worker(self) -> None:
        """Stop the audit thread (pending audits stay queued)."""
        with self._lock:
            worker = self._worker
            self._worker = None
        if worker is not None:
            self._worker_stop.set()
            worker.join(timeout=5.0)

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    def stats(self) -> ServiceStats:
        """A point-in-time snapshot of tenants, cache, and audit health."""
        with self._lock:
            tenants = tuple(
                TenantStats(
                    name=state.name,
                    fingerprint=state.fingerprint,
                    refits=state.refits,
                    observed={
                        letter: reservoir.total_observed
                        for letter, reservoir in sorted(state.reservoirs.items())
                    },
                    retained={
                        letter: len(reservoir)
                        for letter, reservoir in sorted(state.reservoirs.items())
                    },
                    degraded=state.degraded,
                    refit_failures=state.refit_failures,
                    consecutive_refit_failures=state.consecutive_refit_failures,
                    last_refit_error=state.last_refit_error,
                )
                for state in sorted(self._tenants.values(), key=lambda s: s.name)
            )
            return ServiceStats(
                tenants=tenants,
                cache=self._cache.stats(),
                predictions_served=self._predictions_served,
                recommendations_served=self._recommendations_served,
                spot_checks_pending=len(self._spot_queue),
                spot_checks_run=self._spot_runs,
                spot_checks_failed=self._spot_failures,
                max_spot_check_error=self._max_spot_error,
                refit_failures=self._refit_failures,
                degraded_tenants=sum(
                    1 for state in self._tenants.values() if state.degraded
                ),
                spot_check_worker_errors=self._worker_errors,
                spot_check_worker_backoff_seconds=self._worker_backoff_seconds,
            )
