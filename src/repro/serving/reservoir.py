"""Bounded streaming reservoirs for per-tenant latency observations.

The serving layer's write path must accept an unbounded stream of latency
observations per tenant while holding only a fixed-size sample of it.
:class:`StreamingReservoir` implements vectorised reservoir sampling
(Vitter's Algorithm R, batched): after ``m`` observations the reservoir
holds a uniform random subset of min(m, capacity) of them, every observation
having had an equal chance of surviving.  The refit path then treats the
reservoir contents as a representative sample of the tenant's recent
latency environment.

Determinism contract: a reservoir is seeded, and its contents are a pure
function of (seed, capacity, observation sequence) regardless of how the
sequence was split into ``observe``/``extend`` calls.  The serving layer's
refit determinism — same observations, same fingerprint — rests on this.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import ConfigurationError, DistributionError

__all__ = ["StreamingReservoir"]


class StreamingReservoir:
    """Fixed-capacity uniform sample over an unbounded observation stream.

    Args
    ----
    capacity:
        Maximum number of observations retained (>= 1).
    seed:
        Seed for the replacement draws.  Equal seeds and equal observation
        sequences produce equal reservoir contents, independent of batching.
    """

    __slots__ = ("_capacity", "_values", "_filled", "_total", "_rng", "_seed")

    def __init__(self, capacity: int = 4096, seed: int = 0) -> None:
        if capacity < 1:
            raise ConfigurationError(f"reservoir capacity must be >= 1, got {capacity}")
        self._capacity = int(capacity)
        self._values = np.empty(self._capacity, dtype=float)
        self._filled = 0
        self._total = 0
        self._seed = int(seed)
        self._rng = np.random.default_rng(self._seed)

    # ------------------------------------------------------------------
    # Ingest.
    # ------------------------------------------------------------------
    def observe(self, value: float) -> None:
        """Ingest one observation (ms)."""
        self.extend((value,))

    def extend(self, values: Iterable[float] | Sequence[float] | np.ndarray) -> int:
        """Ingest a batch of observations; returns how many were ingested.

        The batch is validated as a whole (finite, non-negative) before any
        element is admitted, so a bad batch never half-updates the reservoir.
        """
        batch = np.asarray(
            values if isinstance(values, np.ndarray) else list(values), dtype=float
        )
        if batch.ndim != 1:
            raise DistributionError("latency observations must form a 1-D sequence")
        if batch.size == 0:
            return 0
        if np.any(~np.isfinite(batch)) or np.any(batch < 0):
            raise DistributionError("latency observations must be finite and non-negative")

        offset = 0
        if self._filled < self._capacity:
            take = min(self._capacity - self._filled, batch.size)
            self._values[self._filled : self._filled + take] = batch[:take]
            self._filled += take
            self._total += take
            offset = take
        remainder = batch[offset:]
        if remainder.size:
            # Algorithm R, batched: observation number m (1-based) replaces a
            # uniformly chosen slot j ~ U{0, m-1} iff j < capacity.
            ordinals = self._total + 1 + np.arange(remainder.size)
            slots = self._rng.integers(0, ordinals)
            keep = slots < self._capacity
            if np.any(keep):
                # Later duplicates of a slot must win so batched ingestion
                # matches one-at-a-time ingestion; assignment order in numpy
                # fancy indexing already applies the last write.
                self._values[slots[keep]] = remainder[keep]
            self._total += remainder.size
        return int(batch.size)

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        """Maximum number of retained observations."""
        return self._capacity

    @property
    def total_observed(self) -> int:
        """Observations ever ingested (retained or not)."""
        return self._total

    def __len__(self) -> int:
        return self._filled

    def values(self) -> np.ndarray:
        """A copy of the retained observations (length ``min(total, capacity)``)."""
        return self._values[: self._filled].copy()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<StreamingReservoir {self._filled}/{self._capacity} retained, "
            f"{self._total} observed>"
        )
