"""Stdlib JSON/HTTP front end for :class:`~repro.serving.service.PredictorService`.

Routes (all JSON)::

    GET  /healthz                          liveness probe
    GET  /stats                            service counters
    GET  /tenants                          registered tenant names
    POST /tenants/<name>                   register a tenant  {"fit": "LNKD-SSD"}
    POST /tenants/<name>/observations      ingest             {"leg": "W", "values": [...]}
    POST /tenants/<name>/refit             refit from reservoirs
    GET  /tenants/<name>/predict?n=3&r=1&w=2
    GET  /tenants/<name>/recommend?read_latency_ms=10&t_visibility_ms=20

Errors map onto status codes: unknown routes and tenants are 404, invalid
parameters (:class:`~repro.exceptions.PBSError`, malformed JSON) are 400.
The server is :class:`http.server.ThreadingHTTPServer`; the underlying
service is thread-safe, so concurrent requests are fine.
"""

from __future__ import annotations

import json
import math
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.core.quorum import ReplicaConfig
from repro.core.sla import SLATarget
from repro.exceptions import PBSError
from repro.serving.service import PredictorService

__all__ = ["make_server", "serve_forever"]

def _reject_constant(constant: str) -> float:
    """``parse_constant`` hook: refuse ``NaN``/``Infinity``/``-Infinity``."""
    raise ValueError(f"non-finite JSON constant {constant!r} is not allowed")


def _validate_observations(values: list) -> None:
    """Reject observation payloads before they can touch a tenant reservoir.

    Every value must be a finite number (bools are JSON numbers to
    ``isinstance`` but never valid latencies).  Validating up front keeps a
    400 response side-effect free: either the whole batch is ingested or none
    of it is.
    """
    for value in values:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValueError(f"observation values must be numbers, got {value!r}")
        if math.isnan(value) or math.isinf(value):
            raise ValueError(f"observation values must be finite, got {value!r}")


#: Query parameters accepted by /recommend, mapped onto SLATarget fields.
_TARGET_FIELDS = {
    "read_latency_ms": float,
    "write_latency_ms": float,
    "latency_percentile": float,
    "t_visibility_ms": float,
    "consistency_probability": float,
    "min_write_quorum": int,
    "min_replication": int,
}


class _Handler(BaseHTTPRequestHandler):
    """One request; the service lives on the server object."""

    server: "PredictorServer"

    # Silence the default stderr access log (the CLI reports the address once).
    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        if self.server.verbose:
            super().log_message(format, *args)

    # ------------------------------------------------------------------
    # Plumbing.
    # ------------------------------------------------------------------
    def _reply(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)
        self.server.requests_handled += 1

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length", "0"))
        raw = self.rfile.read(length) if length else b"{}"
        try:
            # json.loads accepts NaN/Infinity by default; a non-finite
            # observation would silently poison a tenant's reservoir, so the
            # parser itself rejects the constants.
            payload = json.loads(raw or b"{}", parse_constant=_reject_constant)
        except (json.JSONDecodeError, ValueError) as error:
            raise ValueError(f"request body is not valid JSON: {error}") from error
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    def _dispatch(self, method: str) -> None:
        url = urlparse(self.path)
        segments = [s for s in url.path.split("/") if s]
        query = {k: v[-1] for k, v in parse_qs(url.query).items()}
        try:
            self._route(method, segments, query)
        except KeyError as error:
            self._reply(404, {"error": str(error.args[0]) if error.args else "not found"})
        except (PBSError, ValueError) as error:
            self._reply(400, {"error": str(error)})

    # ------------------------------------------------------------------
    # Routes.
    # ------------------------------------------------------------------
    def _route(self, method: str, segments: list[str], query: dict[str, str]) -> None:
        service = self.server.service
        if method == "GET" and segments == ["healthz"]:
            self._reply(200, {"status": "ok"})
            return
        if method == "GET" and segments == ["stats"]:
            self._reply(200, service.stats().to_dict())
            return
        if method == "GET" and segments == ["tenants"]:
            self._reply(200, {"tenants": list(service.tenants())})
            return
        if len(segments) == 2 and segments[0] == "tenants" and method == "POST":
            body = self._read_json()
            fingerprint = service.register_tenant(segments[1], body.get("fit", "LNKD-SSD"))
            self._reply(200, {"tenant": segments[1], "fingerprint": fingerprint})
            return
        if len(segments) == 3 and segments[0] == "tenants":
            name, action = segments[1], segments[2]
            if method == "POST" and action == "observations":
                body = self._read_json()
                leg = body.get("leg")
                values = body.get("values")
                if not isinstance(leg, str) or not isinstance(values, list):
                    raise ValueError(
                        'observations require {"leg": "W|A|R|S", "values": [...]}'
                    )
                _validate_observations(values)
                count = service.ingest(name, leg, values)
                self._reply(200, {"tenant": name, "ingested": count})
                return
            if method == "POST" and action == "refit":
                fingerprint = service.refit(name)
                self._reply(200, {"tenant": name, "fingerprint": fingerprint})
                return
            if method == "GET" and action == "predict":
                config = ReplicaConfig(
                    n=int(query.get("n", 3)),
                    r=int(query.get("r", 1)),
                    w=int(query.get("w", 1)),
                )
                self._reply(200, service.predict(name, config).to_dict())
                return
            if method == "GET" and action == "recommend":
                kwargs = {
                    key: cast(query[key])
                    for key, cast in _TARGET_FIELDS.items()
                    if key in query
                }
                self._reply(200, service.recommend(name, SLATarget(**kwargs)).to_dict())
                return
        raise KeyError(f"no route for {method} /{'/'.join(segments)}")

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("POST")


class PredictorServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`PredictorService`."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        service: PredictorService,
        verbose: bool = False,
    ) -> None:
        super().__init__(address, _Handler)
        self.service = service
        self.verbose = verbose
        self.requests_handled = 0


def make_server(
    service: PredictorService,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
) -> PredictorServer:
    """Bind a :class:`PredictorServer`; ``port=0`` picks a free port."""
    return PredictorServer((host, port), service, verbose=verbose)


def serve_forever(
    server: PredictorServer, request_limit: int | None = None
) -> int:
    """Serve until interrupted, or until ``request_limit`` responses were sent.

    Returns the number of responses handled.  The request limit exists for
    scripted runs (tests, docs, the CLI's ``--request-limit``): the loop
    checks the counter between requests, so the limit is a floor at which the
    server stops accepting, not an exact cap under concurrency.
    """
    try:
        if request_limit is None:
            server.serve_forever(poll_interval=0.05)
        else:
            # Responses are counted by handler threads, so poll between
            # accepts instead of blocking indefinitely on the next one.
            server.timeout = 0.1
            while server.requests_handled < request_limit:
                server.handle_request()
    except KeyboardInterrupt:  # pragma: no cover - interactive use
        pass
    finally:
        server.server_close()
    return server.requests_handled
