"""A small thread-safe LRU cache for served prediction results.

The serving layer caches *final answers* (prediction reports, optimiser
recommendations) keyed by environment fingerprint + request parameters.
Entries are immutable value objects so cache hits can be returned without
copying.  Refits never invalidate explicitly: a refit changes the tenant's
fingerprint, so stale entries simply stop being referenced and age out.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Generic, Hashable, TypeVar

from repro.exceptions import ConfigurationError

__all__ = ["CacheStats", "LRUCache"]

_V = TypeVar("_V")


@dataclass(frozen=True)
class CacheStats:
    """Counters describing cache effectiveness since construction."""

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when never queried)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class LRUCache(Generic[_V]):
    """Bounded mapping with least-recently-used eviction.

    All operations are O(1) and safe to call from the HTTP server's worker
    threads concurrently with the ingest/refit path.
    """

    __slots__ = ("_capacity", "_entries", "_lock", "_hits", "_misses", "_evictions")

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ConfigurationError(f"cache capacity must be >= 1, got {capacity}")
        self._capacity = int(capacity)
        self._entries: OrderedDict[Hashable, _V] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, key: Hashable) -> _V | None:
        """Return the cached value and mark it most recently used."""
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: Hashable, value: _V) -> None:
        """Insert (or refresh) an entry, evicting the LRU entry when full."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = value
                return
            self._entries[key] = value
            if len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> CacheStats:
        """A consistent snapshot of the hit/miss/eviction counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
                capacity=self._capacity,
            )
