"""Environment fingerprints: stable identity for cached predictions.

A tenant's analytic answers are a pure function of (latency-distribution
parameters × configuration grid × query parameters).  The serving layer keys
its result cache on a *fingerprint* of that tuple: equal environments —
however they were constructed — share cache entries, and any refit that
changes a distribution parameter changes the fingerprint and naturally
invalidates every stale entry (no explicit invalidation pass).

Fingerprinting walks the distribution object graph structurally: frozen
dataclasses contribute their class name and field values, numpy arrays their
shape/dtype/bytes, containers their elements.  Two distributions fingerprint
equal iff they are the same class with equal parameters, which is exactly
the condition under which the analytic predictor returns equal answers.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Iterable

import numpy as np

from repro.latency.production import WARSDistributions

__all__ = [
    "distribution_token",
    "environment_fingerprint",
    "request_key",
]


def _tokenise(value: object, parts: list[str]) -> None:
    """Append a canonical token stream for ``value`` to ``parts``."""
    if isinstance(value, np.ndarray):
        parts.append(f"ndarray:{value.shape}:{value.dtype}")
        parts.append(hashlib.sha256(np.ascontiguousarray(value).tobytes()).hexdigest())
    elif isinstance(value, np.generic):
        _tokenise(value.item(), parts)
    elif isinstance(value, float):
        parts.append(f"f:{value.hex()}")
    elif isinstance(value, (int, bool, str, bytes)) or value is None:
        parts.append(f"{type(value).__name__}:{value!r}")
    elif dataclasses.is_dataclass(value) and not isinstance(value, type):
        parts.append(f"dc:{type(value).__module__}.{type(value).__qualname__}")
        for field in dataclasses.fields(value):
            # Derived caches (e.g. QuantileTableDistribution._mean_cache) are
            # excluded from equality by their declaration; mirror that here.
            if not field.compare:
                continue
            parts.append(f"field:{field.name}")
            _tokenise(getattr(value, field.name), parts)
    elif isinstance(value, dict):
        parts.append(f"dict:{len(value)}")
        for key in sorted(value, key=repr):
            _tokenise(key, parts)
            _tokenise(value[key], parts)
    elif isinstance(value, (list, tuple)):
        parts.append(f"seq:{type(value).__name__}:{len(value)}")
        for item in value:
            _tokenise(item, parts)
    else:
        # Non-dataclass objects (e.g. hand-written distribution classes):
        # fall back to class identity plus public attribute dict.  repr() is
        # deliberately avoided — it may omit parameters.
        parts.append(f"obj:{type(value).__module__}.{type(value).__qualname__}")
        state = getattr(value, "__dict__", None)
        if state:
            _tokenise({k: v for k, v in state.items() if not k.startswith("_")}, parts)


def distribution_token(distribution: object) -> str:
    """Canonical token for one latency distribution (or any parameter tree)."""
    parts: list[str] = []
    _tokenise(distribution, parts)
    return hashlib.sha256("\x1f".join(parts).encode()).hexdigest()


def environment_fingerprint(
    distributions: WARSDistributions,
    replication_factors: Iterable[int] = (),
    extra: object = None,
) -> str:
    """Fingerprint of a tenant's latency environment.

    Covers the four WARS leg distributions (parameter-wise), the candidate
    replication grid, and any ``extra`` tuning that changes analytic answers
    (grid points, tail mass, ...).  Equal fingerprints guarantee equal
    analytic predictions.
    """
    parts: list[str] = []
    for letter, leg in distributions.components().items():
        parts.append(f"leg:{letter}")
        _tokenise(leg, parts)
    parts.append(f"factors:{tuple(replication_factors)!r}")
    if extra is not None:
        _tokenise(extra, parts)
    return hashlib.sha256("\x1f".join(parts).encode()).hexdigest()


def request_key(fingerprint: str, kind: str, payload: object) -> str:
    """Cache key for one query against one environment fingerprint."""
    parts: list[str] = [fingerprint, f"kind:{kind}"]
    _tokenise(payload, parts)
    return hashlib.sha256("\x1f".join(parts).encode()).hexdigest()
