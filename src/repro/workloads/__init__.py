"""Workload-generation substrate: key choosers, arrival processes, and mixes."""

from repro.workloads.arrivals import (
    ArrivalProcess,
    BurstyArrivals,
    FixedIntervalArrivals,
    PoissonArrivals,
)
from repro.workloads.keys import (
    HotspotKeys,
    KeyChooser,
    SingleKey,
    UniformKeys,
    ZipfianKeys,
    key_name,
)
from repro.workloads.operations import (
    MixedWorkload,
    Operation,
    OperationKind,
    validation_workload,
)
from repro.workloads.ycsb import YCSB_MIXES, YCSBWorkload, ycsb_workload

__all__ = [
    "ArrivalProcess",
    "BurstyArrivals",
    "FixedIntervalArrivals",
    "PoissonArrivals",
    "HotspotKeys",
    "KeyChooser",
    "SingleKey",
    "UniformKeys",
    "ZipfianKeys",
    "key_name",
    "MixedWorkload",
    "Operation",
    "OperationKind",
    "validation_workload",
    "YCSB_MIXES",
    "YCSBWorkload",
    "ycsb_workload",
]
