"""Arrival processes: when operations start.

The paper's workload parameters are rates (e.g. Table 2's 718 reads/s and
45.65 writes/s at Yammer) and the monotonic-reads model is driven by the
ratio of write and read rates, so workload generation needs explicit arrival
processes.  Poisson (open-loop), fixed-interval (closed cadence), and bursty
arrivals are provided.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.exceptions import WorkloadError

__all__ = ["ArrivalProcess", "PoissonArrivals", "FixedIntervalArrivals", "BurstyArrivals"]


class ArrivalProcess(abc.ABC):
    """Generates operation start times (ms) over a horizon."""

    @abc.abstractmethod
    def times(
        self, horizon_ms: float, rng: np.random.Generator, start_ms: float = 0.0
    ) -> np.ndarray:
        """Return sorted arrival times within ``[start_ms, start_ms + horizon_ms)``."""

    @abc.abstractmethod
    def mean_rate_per_ms(self) -> float:
        """Long-run average arrivals per millisecond."""


@dataclass(frozen=True)
class PoissonArrivals(ArrivalProcess):
    """Open-loop Poisson arrivals at ``rate_per_ms`` operations per millisecond."""

    rate_per_ms: float

    def __post_init__(self) -> None:
        if self.rate_per_ms <= 0:
            raise WorkloadError(f"arrival rate must be positive, got {self.rate_per_ms}")

    @classmethod
    def per_second(cls, rate_per_second: float) -> "PoissonArrivals":
        """Construct from a per-second rate (the unit used in the paper's tables)."""
        return cls(rate_per_ms=rate_per_second / 1_000.0)

    def times(
        self, horizon_ms: float, rng: np.random.Generator, start_ms: float = 0.0
    ) -> np.ndarray:
        if horizon_ms <= 0:
            raise WorkloadError(f"horizon must be positive, got {horizon_ms}")
        expected = self.rate_per_ms * horizon_ms
        # Draw slightly more gaps than expected, then trim to the horizon.
        draw_count = max(16, int(expected * 1.5) + 16)
        arrivals: list[float] = []
        current = start_ms
        while True:
            gaps = rng.exponential(1.0 / self.rate_per_ms, size=draw_count)
            for gap in gaps:
                current += float(gap)
                if current >= start_ms + horizon_ms:
                    return np.asarray(arrivals)
                arrivals.append(current)

    def mean_rate_per_ms(self) -> float:
        return self.rate_per_ms


@dataclass(frozen=True)
class FixedIntervalArrivals(ArrivalProcess):
    """Deterministic arrivals every ``interval_ms`` milliseconds."""

    interval_ms: float

    def __post_init__(self) -> None:
        if self.interval_ms <= 0:
            raise WorkloadError(f"interval must be positive, got {self.interval_ms}")

    def times(
        self, horizon_ms: float, rng: np.random.Generator, start_ms: float = 0.0
    ) -> np.ndarray:
        if horizon_ms <= 0:
            raise WorkloadError(f"horizon must be positive, got {horizon_ms}")
        return np.arange(start_ms, start_ms + horizon_ms, self.interval_ms, dtype=float)

    def mean_rate_per_ms(self) -> float:
        return 1.0 / self.interval_ms


@dataclass(frozen=True)
class BurstyArrivals(ArrivalProcess):
    """On/off bursts: Poisson arrivals at ``burst_rate_per_ms`` during bursts.

    Bursts of exponential duration ``burst_ms`` alternate with idle gaps of
    exponential duration ``idle_ms``; useful for studying how write bursts
    interact with staleness windows.
    """

    burst_rate_per_ms: float
    burst_ms: float
    idle_ms: float

    def __post_init__(self) -> None:
        if self.burst_rate_per_ms <= 0:
            raise WorkloadError(f"burst rate must be positive, got {self.burst_rate_per_ms}")
        if self.burst_ms <= 0 or self.idle_ms <= 0:
            raise WorkloadError("burst and idle durations must be positive")

    def times(
        self, horizon_ms: float, rng: np.random.Generator, start_ms: float = 0.0
    ) -> np.ndarray:
        if horizon_ms <= 0:
            raise WorkloadError(f"horizon must be positive, got {horizon_ms}")
        arrivals: list[float] = []
        current = start_ms
        end = start_ms + horizon_ms
        in_burst = True
        while current < end:
            phase = float(
                rng.exponential(self.burst_ms if in_burst else self.idle_ms)
            )
            phase_end = min(current + phase, end)
            if in_burst:
                position = current
                while True:
                    position += float(rng.exponential(1.0 / self.burst_rate_per_ms))
                    if position >= phase_end:
                        break
                    arrivals.append(position)
            current = phase_end
            in_burst = not in_burst
        return np.asarray(arrivals)

    def mean_rate_per_ms(self) -> float:
        duty_cycle = self.burst_ms / (self.burst_ms + self.idle_ms)
        return self.burst_rate_per_ms * duty_cycle
