"""Operation streams: read/write mixes over keys and time.

An :class:`Operation` is a fully specified request (kind, key, value, start
time).  :class:`MixedWorkload` combines a key chooser, an arrival process, and
a read fraction into a reproducible operation stream, which the cluster's
:class:`~repro.cluster.client.WorkloadRunner` can schedule directly.

The :func:`validation_workload` helper reproduces the §5.2 methodology: insert
increasing versions of a single key at a fixed cadence while issuing
concurrent reads at controlled offsets after each write.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterator, Sequence

import numpy as np

from repro.exceptions import WorkloadError
from repro.latency.base import as_rng
from repro.workloads.arrivals import ArrivalProcess
from repro.workloads.keys import KeyChooser

__all__ = ["OperationKind", "Operation", "MixedWorkload", "validation_workload"]


class OperationKind(Enum):
    """The two operation types of a key-value store."""

    READ = "read"
    WRITE = "write"

    def __lt__(self, other: object) -> bool:
        # Keeps Operation's field-tuple ordering total when start times tie
        # (e.g. a read offset equal to the write interval).
        if isinstance(other, OperationKind):
            return self.value < other.value
        return NotImplemented


@dataclass(frozen=True, order=True)
class Operation:
    """A single request in a workload, ordered by start time."""

    start_ms: float
    kind: OperationKind
    key: str
    value: object = None

    def __post_init__(self) -> None:
        if self.start_ms < 0:
            raise WorkloadError(f"operation start time must be non-negative, got {self.start_ms}")


@dataclass(frozen=True)
class MixedWorkload:
    """A read/write mix over a keyspace with a configurable arrival process.

    Attributes
    ----------
    keys:
        Key chooser (uniform, Zipfian, hotspot, single-key, …).
    arrivals:
        Arrival process generating operation start times.
    read_fraction:
        Fraction of operations that are reads (0.6 reproduces the LinkedIn
        60/40 read/read-modify-write mix quoted in §5.4).
    """

    keys: KeyChooser
    arrivals: ArrivalProcess
    read_fraction: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.read_fraction <= 1.0:
            raise WorkloadError(
                f"read fraction must be in [0, 1], got {self.read_fraction}"
            )

    def generate(
        self,
        horizon_ms: float,
        rng: np.random.Generator | int | None = None,
        start_ms: float = 0.0,
    ) -> list[Operation]:
        """Generate the operation stream for a simulated time window."""
        generator = as_rng(rng)
        times = self.arrivals.times(horizon_ms, generator, start_ms=start_ms)
        operations: list[Operation] = []
        for sequence, time_ms in enumerate(times):
            is_read = generator.random() < self.read_fraction
            key = self.keys.choose(generator)
            if is_read:
                operations.append(
                    Operation(start_ms=float(time_ms), kind=OperationKind.READ, key=key)
                )
            else:
                operations.append(
                    Operation(
                        start_ms=float(time_ms),
                        kind=OperationKind.WRITE,
                        key=key,
                        value=f"value-{sequence}",
                    )
                )
        return operations

    def stream(
        self,
        horizon_ms: float,
        rng: np.random.Generator | int | None = None,
    ) -> Iterator[Operation]:
        """Iterator variant of :meth:`generate` for very long workloads."""
        yield from self.generate(horizon_ms, rng)


def validation_workload(
    key: str,
    writes: int,
    write_interval_ms: float,
    read_offsets_ms: Sequence[float],
    start_ms: float = 0.0,
) -> list[Operation]:
    """Build the §5.2 validation workload.

    Writes increasing versions of ``key`` every ``write_interval_ms``
    milliseconds.  After each write, issues one read per requested offset,
    measured from the write's *start* time (commit-relative offsets are
    recovered later from the traces).  The offsets should be smaller than the
    write interval so each read races exactly one write, matching the paper's
    methodology of overwriting a single key while concurrently reading it.
    """
    if writes < 1:
        raise WorkloadError(f"at least one write is required, got {writes}")
    if write_interval_ms <= 0:
        raise WorkloadError(f"write interval must be positive, got {write_interval_ms}")
    if not read_offsets_ms:
        raise WorkloadError("at least one read offset is required")
    if min(read_offsets_ms) < 0:
        raise WorkloadError("read offsets must be non-negative")
    if max(read_offsets_ms) >= write_interval_ms:
        raise WorkloadError(
            "read offsets must be smaller than the write interval so reads race "
            "exactly one write"
        )

    operations: list[Operation] = []
    for index in range(writes):
        write_time = start_ms + index * write_interval_ms
        operations.append(
            Operation(
                start_ms=write_time,
                kind=OperationKind.WRITE,
                key=key,
                value=f"version-{index}",
            )
        )
        for offset in read_offsets_ms:
            operations.append(
                Operation(
                    start_ms=write_time + float(offset),
                    kind=OperationKind.READ,
                    key=key,
                )
            )
    return sorted(operations)
