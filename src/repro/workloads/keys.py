"""Key-selection strategies for workload generation.

The paper's multi-key discussion (§6) assumes request distributions over keys;
YCSB-style benchmarks conventionally use uniform, Zipfian, hotspot, and
latest-biased choices.  All choosers draw from a fixed keyspace of
``key-0000…`` style identifiers so traces remain human-readable.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import WorkloadError
from repro.latency.base import as_rng

__all__ = [
    "KeyChooser",
    "UniformKeys",
    "ZipfianKeys",
    "HotspotKeys",
    "SingleKey",
    "key_name",
]


def key_name(index: int) -> str:
    """Canonical key string for a key index."""
    if index < 0:
        raise WorkloadError(f"key index must be non-negative, got {index}")
    return f"key-{index:08d}"


class KeyChooser(abc.ABC):
    """Chooses which key each operation targets."""

    @abc.abstractmethod
    def choose(self, rng: np.random.Generator) -> str:
        """Return the key for the next operation."""

    @abc.abstractmethod
    def keyspace_size(self) -> int:
        """Number of distinct keys this chooser can return."""

    def sample(self, count: int, rng: np.random.Generator | int | None = None) -> list[str]:
        """Draw ``count`` keys (convenience for tests and analysis)."""
        generator = as_rng(rng)
        return [self.choose(generator) for _ in range(count)]


@dataclass(frozen=True)
class SingleKey(KeyChooser):
    """Every operation touches the same key — the paper's validation workload shape."""

    key: str = "key-00000000"

    def choose(self, rng: np.random.Generator) -> str:
        return self.key

    def keyspace_size(self) -> int:
        return 1


@dataclass(frozen=True)
class UniformKeys(KeyChooser):
    """Uniformly random key choice over a fixed keyspace."""

    keys: int

    def __post_init__(self) -> None:
        if self.keys < 1:
            raise WorkloadError(f"keyspace must contain at least one key, got {self.keys}")

    def choose(self, rng: np.random.Generator) -> str:
        return key_name(int(rng.integers(0, self.keys)))

    def keyspace_size(self) -> int:
        return self.keys


@dataclass(frozen=True)
class ZipfianKeys(KeyChooser):
    """Zipf-distributed key popularity (key 0 hottest), the YCSB default skew.

    Probabilities follow ``P(rank i) ∝ 1 / (i + 1)^theta`` over a finite
    keyspace, computed exactly rather than with the unbounded ``numpy`` Zipf
    sampler so small keyspaces behave sensibly.
    """

    keys: int
    theta: float = 0.99
    _probabilities: np.ndarray = field(init=False, repr=False, compare=False, default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.keys < 1:
            raise WorkloadError(f"keyspace must contain at least one key, got {self.keys}")
        if self.theta <= 0:
            raise WorkloadError(f"zipf exponent theta must be positive, got {self.theta}")
        ranks = np.arange(1, self.keys + 1, dtype=float)
        weights = 1.0 / np.power(ranks, self.theta)
        object.__setattr__(self, "_probabilities", weights / weights.sum())

    def choose(self, rng: np.random.Generator) -> str:
        return key_name(int(rng.choice(self.keys, p=self._probabilities)))

    def keyspace_size(self) -> int:
        return self.keys

    def probability_of_rank(self, rank: int) -> float:
        """Probability of choosing the key at popularity ``rank`` (0 = hottest)."""
        if not 0 <= rank < self.keys:
            raise WorkloadError(f"rank must be in [0, {self.keys}), got {rank}")
        return float(self._probabilities[rank])


@dataclass(frozen=True)
class HotspotKeys(KeyChooser):
    """A fraction of operations hit a small hot set; the rest are uniform.

    ``hot_fraction`` of the keyspace receives ``hot_probability`` of the
    operations (YCSB's hotspot distribution).
    """

    keys: int
    hot_fraction: float = 0.1
    hot_probability: float = 0.9

    def __post_init__(self) -> None:
        if self.keys < 1:
            raise WorkloadError(f"keyspace must contain at least one key, got {self.keys}")
        if not 0.0 < self.hot_fraction <= 1.0:
            raise WorkloadError(f"hot fraction must be in (0, 1], got {self.hot_fraction}")
        if not 0.0 <= self.hot_probability <= 1.0:
            raise WorkloadError(
                f"hot probability must be in [0, 1], got {self.hot_probability}"
            )

    @property
    def hot_keys(self) -> int:
        """Number of keys in the hot set (at least one)."""
        return max(1, int(self.keys * self.hot_fraction))

    def choose(self, rng: np.random.Generator) -> str:
        if rng.random() < self.hot_probability:
            return key_name(int(rng.integers(0, self.hot_keys)))
        return key_name(int(rng.integers(0, self.keys)))

    def keyspace_size(self) -> int:
        return self.keys
