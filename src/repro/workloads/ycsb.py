"""YCSB-style canned workloads.

The Yahoo! Cloud Serving Benchmark's standard workload mixes (A–F) are the
lingua franca for key-value store evaluation, and the deployments surveyed in
§2.3 of the paper (Cassandra, Riak, Voldemort) are routinely benchmarked with
them.  These helpers map the YCSB mixes onto this package's workload
generators so examples and ablation benchmarks can speak the same language.

Read-modify-write operations (workload F) are modelled as a read immediately
followed by a write to the same key, which is how the LinkedIn 60/40
"read / read-modify-write" traffic quoted in §5.4 behaves at the replica level.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import WorkloadError
from repro.latency.base import as_rng
from repro.workloads.arrivals import PoissonArrivals
from repro.workloads.keys import KeyChooser, UniformKeys, ZipfianKeys
from repro.workloads.operations import Operation, OperationKind, validation_workload

__all__ = ["YCSBWorkload", "ycsb_workload", "skewed_validation_workload", "YCSB_MIXES"]

#: Standard YCSB mixes: (read fraction, update fraction, read-modify-write fraction).
YCSB_MIXES: dict[str, tuple[float, float, float]] = {
    "A": (0.50, 0.50, 0.0),  # update heavy
    "B": (0.95, 0.05, 0.0),  # read mostly
    "C": (1.00, 0.00, 0.0),  # read only
    "D": (0.95, 0.05, 0.0),  # read latest (latest-biased key choice)
    "F": (0.50, 0.00, 0.5),  # read-modify-write
}


@dataclass(frozen=True)
class YCSBWorkload:
    """A named YCSB mix bound to a keyspace and request rate."""

    name: str
    keys: KeyChooser
    rate_per_second: float
    read_fraction: float
    update_fraction: float
    rmw_fraction: float

    def __post_init__(self) -> None:
        total = self.read_fraction + self.update_fraction + self.rmw_fraction
        if abs(total - 1.0) > 1e-9:
            raise WorkloadError(
                f"operation mix must sum to 1, got {total} for workload {self.name!r}"
            )
        if self.rate_per_second <= 0:
            raise WorkloadError(f"request rate must be positive, got {self.rate_per_second}")

    def generate(
        self,
        horizon_ms: float,
        rng: np.random.Generator | int | None = None,
    ) -> list[Operation]:
        """Generate the operation stream over ``horizon_ms`` simulated milliseconds."""
        generator = as_rng(rng)
        arrivals = PoissonArrivals.per_second(self.rate_per_second)
        times = arrivals.times(horizon_ms, generator)
        operations: list[Operation] = []
        for sequence, time_ms in enumerate(times):
            key = self.keys.choose(generator)
            roll = generator.random()
            if roll < self.read_fraction:
                operations.append(
                    Operation(start_ms=float(time_ms), kind=OperationKind.READ, key=key)
                )
            elif roll < self.read_fraction + self.update_fraction:
                operations.append(
                    Operation(
                        start_ms=float(time_ms),
                        kind=OperationKind.WRITE,
                        key=key,
                        value=f"update-{sequence}",
                    )
                )
            else:
                # Read-modify-write: a read followed immediately by a write.
                operations.append(
                    Operation(start_ms=float(time_ms), kind=OperationKind.READ, key=key)
                )
                operations.append(
                    Operation(
                        start_ms=float(time_ms) + 1e-3,
                        kind=OperationKind.WRITE,
                        key=key,
                        value=f"rmw-{sequence}",
                    )
                )
        return operations


def skewed_validation_workload(
    keys: KeyChooser,
    writes: int,
    write_interval_ms: float,
    read_offsets_ms: tuple[float, ...] | list[float],
    rng: np.random.Generator | int | None = None,
) -> list[Operation]:
    """The §5.2 overwrite-and-race workload generalised to a skewed keyspace.

    Every ``write_interval_ms`` a write targets a key drawn from ``keys``
    (YCSB-style Zipfian choosers make popular keys receive back-to-back
    writes), and one read per offset races *that key's* write.  Unlike
    :func:`~repro.workloads.operations.validation_workload`, offsets may
    exceed the write interval: a hot key's reads can then race several of
    its in-flight writes, which is exactly the contention the paper's
    one-write-at-a-time model rules out.

    Key choice consumes one ``rng`` draw per write (and nothing else), so
    the stream is deterministic for a fixed seed and independent of the
    cluster's sampling streams.
    """
    if writes < 1:
        raise WorkloadError(f"at least one write is required, got {writes}")
    if write_interval_ms <= 0:
        raise WorkloadError(f"write interval must be positive, got {write_interval_ms}")
    if not read_offsets_ms:
        raise WorkloadError("at least one read offset is required")
    if min(read_offsets_ms) < 0:
        raise WorkloadError("read offsets must be non-negative")

    generator = as_rng(rng)
    operations: list[Operation] = []
    for index in range(writes):
        write_time = index * write_interval_ms
        key = keys.choose(generator)
        operations.append(
            Operation(
                start_ms=write_time,
                kind=OperationKind.WRITE,
                key=key,
                value=f"version-{index}",
            )
        )
        for offset in read_offsets_ms:
            operations.append(
                Operation(
                    start_ms=write_time + float(offset),
                    kind=OperationKind.READ,
                    key=key,
                )
            )
    return sorted(operations)


def ycsb_workload(
    name: str,
    keyspace: int = 1_000,
    rate_per_second: float = 500.0,
    zipf_theta: float = 0.99,
) -> YCSBWorkload:
    """Build a standard YCSB workload by letter (A, B, C, D, or F).

    Workload D uses a uniform keyspace here (the "latest" distribution needs
    insertion order, which single-run simulations rarely exercise); all other
    skewed mixes use the Zipfian chooser.
    """
    letter = name.upper()
    try:
        read_fraction, update_fraction, rmw_fraction = YCSB_MIXES[letter]
    except KeyError as exc:
        raise WorkloadError(
            f"unknown YCSB workload {name!r}; expected one of {', '.join(YCSB_MIXES)}"
        ) from exc
    keys: KeyChooser
    if letter == "D":
        keys = UniformKeys(keyspace)
    else:
        keys = ZipfianKeys(keyspace, theta=zipf_theta)
    return YCSBWorkload(
        name=letter,
        keys=keys,
        rate_per_second=rate_per_second,
        read_fraction=read_fraction,
        update_fraction=update_fraction,
        rmw_fraction=rmw_fraction,
    )
