"""Exception hierarchy for the PBS reproduction library.

All library-specific errors derive from :class:`PBSError` so callers can
catch a single base class at API boundaries while still being able to
distinguish configuration problems from simulation problems.
"""

from __future__ import annotations


class PBSError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(PBSError):
    """An invalid replica, quorum, or distribution configuration was supplied."""


class DistributionError(PBSError):
    """A latency distribution was mis-specified or could not be fit."""


class SimulationError(PBSError):
    """The discrete-event simulator reached an inconsistent internal state."""


class WorkloadError(PBSError):
    """A workload generator was configured with invalid parameters."""


class AnalysisError(PBSError):
    """A measurement or validation routine received unusable input."""


class ExperimentError(PBSError):
    """An experiment was requested that does not exist or failed to run."""


class KernelError(PBSError):
    """An unknown or unusable Monte Carlo kernel backend was requested."""


class ScenarioError(PBSError):
    """A hostile-conditions scenario was mis-specified or does not exist."""
